//! The front-end load balancer: backend selection policies.
//!
//! Both policies are pure functions of explicitly-tracked state, so
//! routing decisions are deterministic and independent of the worker
//! thread count. Least-outstanding sees the per-backend in-flight
//! counts the cluster maintains; those counts decrement at epoch
//! harvests, so its feedback is epoch-granular — exactly the staleness
//! a real L4 balancer sees over a network.

/// Backend-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbPolicy {
    /// Cycle through backends in registration order.
    RoundRobin,
    /// Pick the backend with the fewest in-flight requests; ties go to
    /// the lowest-numbered backend.
    LeastOutstanding,
}

/// Load-balancer state (just the round-robin cursor today).
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    policy: LbPolicy,
    next: usize,
}

impl LoadBalancer {
    /// A balancer with the given policy.
    pub fn new(policy: LbPolicy) -> Self {
        LoadBalancer { policy, next: 0 }
    }

    /// The configured policy.
    pub fn policy(&self) -> LbPolicy {
        self.policy
    }

    /// Picks a backend index given the per-backend outstanding counts.
    pub fn pick(&mut self, outstanding: &[u64]) -> usize {
        assert!(!outstanding.is_empty(), "no backends registered");
        match self.policy {
            LbPolicy::RoundRobin => {
                let i = self.next % outstanding.len();
                self.next = (i + 1) % outstanding.len();
                i
            }
            LbPolicy::LeastOutstanding => {
                let mut best = 0;
                for (i, &o) in outstanding.iter().enumerate() {
                    if o < outstanding[best] {
                        best = i;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_in_order() {
        let mut lb = LoadBalancer::new(LbPolicy::RoundRobin);
        let counts = [5, 0, 7];
        let picks: Vec<usize> = (0..7).map(|_| lb.pick(&counts)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_outstanding_prefers_idle_and_breaks_ties_low() {
        let mut lb = LoadBalancer::new(LbPolicy::LeastOutstanding);
        assert_eq!(lb.pick(&[3, 1, 2]), 1);
        assert_eq!(lb.pick(&[2, 2, 2]), 0, "tie goes to the lowest index");
        assert_eq!(lb.pick(&[4, 3, 0, 0]), 2);
    }
}
