//! The front-end load balancer: backend selection policies and backend
//! health.
//!
//! Both policies are pure functions of explicitly-tracked state, so
//! routing decisions are deterministic and independent of the worker
//! thread count. Least-outstanding sees the per-backend in-flight
//! counts the cluster maintains; those counts decrement at epoch
//! harvests, so its feedback is epoch-granular — exactly the staleness
//! a real L4 balancer sees over a network.
//!
//! Health is the balancer's view of a backend, maintained by the
//! cluster's failure machinery: `Draining` backends finish what they
//! hold but receive nothing new (connection draining before maintenance
//! or a migration blackout); `Down` backends are gone and their
//! in-flight requests have been re-queued. Both are excluded from
//! routing; a request that finds no healthy backend parks at the LB
//! until one recovers, so overload degrades to queueing, never to loss.

/// Backend-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbPolicy {
    /// Cycle through backends in registration order.
    RoundRobin,
    /// Pick the backend with the fewest in-flight requests; ties go to
    /// the lowest-numbered backend.
    LeastOutstanding,
}

/// The balancer's view of one backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Health {
    /// Routable.
    #[default]
    Healthy,
    /// Finishing its in-flight requests; receives nothing new.
    Draining,
    /// Gone (host crash, VM failure, migration blackout); in-flight
    /// requests were re-queued by the cluster.
    Down,
}

/// Load-balancer state (just the round-robin cursor today).
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    policy: LbPolicy,
    next: usize,
}

impl LoadBalancer {
    /// A balancer with the given policy.
    pub fn new(policy: LbPolicy) -> Self {
        LoadBalancer { policy, next: 0 }
    }

    /// The configured policy.
    pub fn policy(&self) -> LbPolicy {
        self.policy
    }

    /// Picks a backend index given the per-backend outstanding counts
    /// and health states. Draining and down backends are never picked;
    /// returns `None` when no backend is routable.
    pub fn pick(&mut self, outstanding: &[u64], health: &[Health]) -> Option<usize> {
        assert!(!outstanding.is_empty(), "no backends registered");
        assert_eq!(outstanding.len(), health.len());
        match self.policy {
            LbPolicy::RoundRobin => {
                // Scan from the cursor for the next routable backend, so
                // unhealthy entries are skipped without stalling the
                // rotation.
                for step in 0..outstanding.len() {
                    let i = (self.next + step) % outstanding.len();
                    if health[i] == Health::Healthy {
                        self.next = (i + 1) % outstanding.len();
                        return Some(i);
                    }
                }
                None
            }
            LbPolicy::LeastOutstanding => {
                let mut best: Option<usize> = None;
                for (i, &o) in outstanding.iter().enumerate() {
                    if health[i] != Health::Healthy {
                        continue;
                    }
                    match best {
                        Some(b) if outstanding[b] <= o => {}
                        _ => best = Some(i),
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: Health = Health::Healthy;

    #[test]
    fn round_robin_cycles_in_order() {
        let mut lb = LoadBalancer::new(LbPolicy::RoundRobin);
        let counts = [5, 0, 7];
        let health = [H; 3];
        let picks: Vec<usize> = (0..7).map(|_| lb.pick(&counts, &health).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_outstanding_prefers_idle_and_breaks_ties_low() {
        let mut lb = LoadBalancer::new(LbPolicy::LeastOutstanding);
        assert_eq!(lb.pick(&[3, 1, 2], &[H; 3]), Some(1));
        assert_eq!(lb.pick(&[2, 2, 2], &[H; 3]), Some(0), "tie goes low");
        assert_eq!(lb.pick(&[4, 3, 0, 0], &[H; 4]), Some(2));
    }

    #[test]
    fn draining_and_down_backends_are_never_picked() {
        let mut lb = LoadBalancer::new(LbPolicy::LeastOutstanding);
        // Backend 1 has the fewest in flight but is draining; 2 is down.
        let health = [Health::Healthy, Health::Draining, Health::Down];
        assert_eq!(lb.pick(&[9, 0, 0], &health), Some(0));
        // Round-robin likewise skips both and keeps rotating over the
        // healthy survivors.
        let mut rr = LoadBalancer::new(LbPolicy::RoundRobin);
        let health = [
            Health::Draining,
            Health::Healthy,
            Health::Down,
            Health::Healthy,
        ];
        let picks: Vec<usize> = (0..4).map(|_| rr.pick(&[0; 4], &health).unwrap()).collect();
        assert_eq!(picks, vec![1, 3, 1, 3]);
    }

    #[test]
    fn no_routable_backend_yields_none() {
        let mut lb = LoadBalancer::new(LbPolicy::LeastOutstanding);
        assert_eq!(lb.pick(&[0, 0], &[Health::Down, Health::Draining]), None);
        let mut rr = LoadBalancer::new(LbPolicy::RoundRobin);
        assert_eq!(rr.pick(&[0], &[Health::Down]), None);
    }
}
