//! The deterministic cross-host event loop.
//!
//! A [`Cluster`] composes N independent [`Machine`] hosts under one
//! cluster-level timing wheel ([`EventQueue`]) that carries everything
//! crossing host boundaries: the open-loop request stream arriving at
//! the load balancer and the request deliveries it dispatches onto
//! per-host links. Hosts advance in **lockstep epochs**:
//!
//! 1. pop every cluster event with `t < epoch_end` (LB routing,
//!    request injections into target hosts);
//! 2. step all hosts to `epoch_end − 1 ns` — serially or fanned across
//!    worker threads, hosts share nothing;
//! 3. harvest replies and drops serially in host order.
//!
//! Determinism at any `VSCALE_THREADS`: the epoch length never exceeds
//! the smallest link latency (asserted per host), so a message sent
//! while popping epoch k's events is delivered at
//! `t + latency ≥ epoch_end` — i.e. in a strictly later epoch, *after*
//! the hosts it targets were fully stepped through epoch k. Within an
//! epoch each host therefore evolves only from events already in its
//! local queue, making its trajectory a pure function of its inputs and
//! independent of how hosts are partitioned across workers. Stepping to
//! `epoch_end − 1 ns` (not `epoch_end`) keeps boundary-instant events
//! out of the current epoch entirely, so no same-instant ordering
//! between cluster injection and host-local events ever arises.

use std::collections::VecDeque;

use guest_kernel::thread::IoQueueId;
use metrics::fleet::{FleetPoint, HostSample};
use sim_core::event::EventQueue;
use sim_core::fault::SimError;
use sim_core::rng::SimRng;
use sim_core::stats::Histogram;
use sim_core::time::{SimDuration, SimTime};
use vscale::{DomId, Machine};
use xen_sched::evtchn::PortId;

use crate::lb::{LbPolicy, LoadBalancer};
use crate::net::{Link, LinkConfig};

/// Bytes of one HTTP request on the wire (GET + headers).
pub const REQUEST_BYTES: u64 = 512;

/// Cluster-level parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Lockstep epoch length; must not exceed any host link's latency.
    pub epoch: SimDuration,
    /// Load-balancer policy.
    pub lb: LbPolicy,
    /// Seed for the cluster's own RNG (request inter-arrival jitter).
    pub seed: u64,
    /// Worker threads for host stepping; 0 means
    /// `testkit::parallel::threads_from_env()` (`VSCALE_THREADS`).
    pub threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            epoch: SimDuration::from_us(200),
            lb: LbPolicy::RoundRobin,
            seed: 1,
            threads: 0,
        }
    }
}

/// One Apache-serving VM the load balancer can route to.
#[derive(Clone, Copy, Debug)]
pub struct BackendSpec {
    /// Index of the host the VM runs on.
    pub host: usize,
    /// The serving domain.
    pub dom: DomId,
    /// Event-channel port requests arrive on (`ApacheServer::port`).
    pub port: PortId,
    /// The listen queue (`ApacheServer::queue`), for drop accounting.
    pub queue: IoQueueId,
    /// Reply size on the wire, for the host → LB leg.
    pub reply_bytes: u64,
}

/// Everything crossing host boundaries rides the cluster wheel.
enum NetMsg {
    /// The next open-loop request reaches the load balancer.
    Arrival,
    /// A dispatched request reaches its target host's NIC.
    Deliver { backend: usize },
}

#[derive(Clone, Copy)]
struct Stream {
    rate_rps: f64,
    end: SimTime,
}

struct HostSlot {
    machine: Machine,
    link: Link,
    /// In-window request latencies (LB send → reply back at LB), µs.
    latency_us: Histogram,
    /// In-window completions.
    completed: u64,
    /// In-window listen-backlog drops.
    drops: u64,
}

struct BackendSlot {
    spec: BackendSpec,
    /// Send times of dispatched-but-unaccounted requests, FIFO.
    pending: VecDeque<SimTime>,
    /// Completions already harvested from this backend's log.
    seen_completions: usize,
    /// Drops already harvested from this backend's queue counter.
    seen_drops: u64,
}

/// A fleet of machines behind one load balancer.
pub struct Cluster {
    config: ClusterConfig,
    queue: EventQueue<NetMsg>,
    rng: SimRng,
    now: SimTime,
    hosts: Vec<HostSlot>,
    backends: Vec<BackendSlot>,
    /// Per-backend in-flight counts (the LB's own dispatch ledger).
    outstanding: Vec<u64>,
    lb: LoadBalancer,
    stream: Option<Stream>,
    window: (SimTime, SimTime),
    sent: u64,
    /// Scratch for harvest: (completion time, backend index).
    harvest_buf: Vec<(SimTime, usize)>,
}

impl Cluster {
    /// An empty cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let mut rng = SimRng::new(config.seed);
        let arrivals_rng = rng.fork(0x434c_5553);
        Cluster {
            queue: EventQueue::new(),
            rng: arrivals_rng,
            now: SimTime::ZERO,
            hosts: Vec::new(),
            backends: Vec::new(),
            outstanding: Vec::new(),
            lb: LoadBalancer::new(config.lb),
            stream: None,
            window: (SimTime::ZERO, SimTime::MAX),
            sent: 0,
            harvest_buf: Vec::new(),
            config,
        }
    }

    /// Adds a host behind `link`; returns its index. The lockstep
    /// guarantee needs `epoch <= link.latency`, asserted here.
    pub fn add_host(&mut self, machine: Machine, link: LinkConfig) -> usize {
        assert!(
            self.config.epoch <= link.latency,
            "epoch {:?} exceeds link latency {:?}: cross-host messages \
             could land inside the epoch that sent them",
            self.config.epoch,
            link.latency,
        );
        self.hosts.push(HostSlot {
            machine,
            link: Link::new(link),
            latency_us: Histogram::new(),
            completed: 0,
            drops: 0,
        });
        self.hosts.len() - 1
    }

    /// Registers a serving VM; returns its backend index.
    pub fn add_backend(&mut self, spec: BackendSpec) -> usize {
        assert!(spec.host < self.hosts.len(), "unknown host {}", spec.host);
        self.backends.push(BackendSlot {
            spec,
            pending: VecDeque::new(),
            seen_completions: 0,
            seen_drops: 0,
        });
        self.outstanding.push(0);
        self.backends.len() - 1
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of registered backends.
    pub fn n_backends(&self) -> usize {
        self.backends.len()
    }

    /// The host's machine (e.g. for workload installation before a run).
    pub fn machine_mut(&mut self, host: usize) -> &mut Machine {
        &mut self.hosts[host].machine
    }

    /// Read access to a host's machine.
    pub fn machine(&self, host: usize) -> &Machine {
        &self.hosts[host].machine
    }

    /// Cluster time (last completed epoch boundary).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Requests dispatched inside the measurement window so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Restricts latency/drop accounting to requests *sent* in
    /// `[start, end)`; dispatches outside it still run (warmup,
    /// cooldown) but are not measured.
    pub fn set_window(&mut self, start: SimTime, end: SimTime) {
        self.window = (start, end);
    }

    /// Starts an open-loop request stream: `rate_rps` requests/s with
    /// exponential inter-arrival jitter, first arrival shortly after
    /// `start`, last before `end`. Open-loop means arrivals never wait
    /// for replies — exactly the load regime where tail latency
    /// explodes at saturation.
    pub fn open_loop(&mut self, rate_rps: f64, start: SimTime, end: SimTime) {
        assert!(rate_rps > 0.0);
        assert!(self.stream.is_none(), "one stream per run");
        self.stream = Some(Stream { rate_rps, end });
        let gap = self.next_gap(rate_rps);
        let first = start + gap;
        if first < end {
            self.queue.schedule(first, NetMsg::Arrival);
        }
    }

    fn next_gap(&mut self, rate_rps: f64) -> SimDuration {
        let us = self.rng.exponential(1e6 / rate_rps);
        SimDuration::from_us_f64(us).max(SimDuration::from_ns(1))
    }

    fn in_window(&self, t: SimTime) -> bool {
        t >= self.window.0 && t < self.window.1
    }

    fn handle(&mut self, t: SimTime, msg: NetMsg) {
        match msg {
            NetMsg::Arrival => {
                self.dispatch(t);
                let s = self.stream.expect("arrival without a stream");
                let next = t + self.next_gap(s.rate_rps);
                if next < s.end {
                    self.queue.schedule(next, NetMsg::Arrival);
                }
            }
            NetMsg::Deliver { backend } => {
                let spec = self.backends[backend].spec;
                self.hosts[spec.host]
                    .machine
                    .inject_io(spec.dom, spec.port, t, 1);
            }
        }
    }

    fn dispatch(&mut self, t: SimTime) {
        let b = self.lb.pick(&self.outstanding);
        let host = self.backends[b].spec.host;
        let deliver_at = self.hosts[host].link.send_request(t, REQUEST_BYTES);
        self.queue
            .schedule(deliver_at, NetMsg::Deliver { backend: b });
        self.backends[b].pending.push_back(t);
        self.outstanding[b] += 1;
        if self.in_window(t) {
            self.sent += 1;
        }
    }

    /// Runs the lockstep loop to `deadline` (an epoch multiple is not
    /// required; the final epoch is clipped).
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        assert!(!self.hosts.is_empty(), "no hosts");
        while self.now < deadline {
            let epoch_end = (self.now + self.config.epoch).min(deadline);
            // 1. Cross-host deliveries and LB routing due this epoch,
            //    batch-drained (one wheel settle per distinct instant).
            let lb_deadline = SimTime::from_ns(epoch_end.as_ns() - 1);
            while let Some((t, msg)) = self.queue.pop_next_until(lb_deadline) {
                self.handle(t, msg);
            }
            // 2. Step every host through the epoch.
            self.step_hosts(SimTime::from_ns(epoch_end.as_ns() - 1))?;
            // 3. Serial harvest in host order.
            self.harvest();
            self.now = epoch_end;
        }
        Ok(())
    }

    /// Steps all hosts to `to`, fanning across workers when configured.
    /// Results are collected per host and the first error (in host
    /// order) is returned, so the error too is independent of the
    /// thread count.
    fn step_hosts(&mut self, to: SimTime) -> Result<(), SimError> {
        let n = self.hosts.len();
        let threads = match self.config.threads {
            0 => testkit::parallel::threads_from_env(),
            t => t,
        }
        .min(n)
        .max(1);
        if threads == 1 {
            let mut first_err = None;
            for h in &mut self.hosts {
                if let Err(e) = h.machine.step_to(to) {
                    first_err.get_or_insert(e);
                }
            }
            return match first_err {
                None => Ok(()),
                Some(e) => Err(e),
            };
        }
        let chunk = n.div_ceil(threads);
        let results: Vec<Result<(), SimError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .hosts
                .chunks_mut(chunk)
                .map(|hs| {
                    scope.spawn(move || {
                        hs.iter_mut()
                            .map(|h| h.machine.step_to(to))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // Chunks are contiguous and joined in order, so the
            // flattened results are in host order.
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("host worker panicked"))
                .collect()
        });
        results.into_iter().collect()
    }

    /// Matches new replies and drops against the dispatch ledger.
    ///
    /// Completions are matched FIFO per backend: per-request identity
    /// does not survive the Apache model's worker pool, and workers can
    /// reorder service completion slightly, so an individual latency
    /// sample may pair a reply with a neighbouring request's send time.
    /// Counts are exact, the pairing is deterministic, and the
    /// distortion is bounded by in-VM queueing spread — negligible off
    /// saturation, documented noise at it. Listen-queue drops likewise
    /// retire the oldest pending entries (real drops hit the batch
    /// tail), keeping the ledger length exact.
    fn harvest(&mut self) {
        for host_idx in 0..self.hosts.len() {
            // Gather this host's new completions across its backends in
            // completion-time order — its reply link serializes them in
            // that order regardless of which VM sent what.
            let mut buf = std::mem::take(&mut self.harvest_buf);
            buf.clear();
            for (bidx, b) in self.backends.iter_mut().enumerate() {
                if b.spec.host != host_idx {
                    continue;
                }
                let (_, _, completions) = self.hosts[host_idx].machine.io_logs(b.spec.dom);
                for &c in &completions[b.seen_completions..] {
                    buf.push((c, bidx));
                }
                b.seen_completions = completions.len();
            }
            buf.sort_unstable();
            let host = &mut self.hosts[host_idx];
            for &(c, bidx) in buf.iter() {
                let b = &mut self.backends[bidx];
                let send = b
                    .pending
                    .pop_front()
                    .expect("reply without a pending request");
                self.outstanding[bidx] -= 1;
                let reply_at = host.link.send_reply(c, b.spec.reply_bytes);
                if send >= self.window.0 && send < self.window.1 {
                    host.latency_us.record(reply_at.since(send).as_us());
                    host.completed += 1;
                }
            }
            self.harvest_buf = buf;
            // Listen-queue overflows: retire dropped requests.
            for (bidx, b) in self.backends.iter_mut().enumerate() {
                if b.spec.host != host_idx {
                    continue;
                }
                let total = self.hosts[host_idx]
                    .machine
                    .guest(b.spec.dom)
                    .io_drops(b.spec.queue);
                for _ in 0..total - b.seen_drops {
                    let send = b.pending.pop_front().expect("drop without a request");
                    self.outstanding[bidx] -= 1;
                    if send >= self.window.0 && send < self.window.1 {
                        self.hosts[host_idx].drops += 1;
                    }
                }
                b.seen_drops = total;
            }
        }
    }

    /// The per-host measurement samples (for [`FleetPoint::from_hosts`]).
    pub fn host_samples(&self) -> Vec<HostSample> {
        self.hosts
            .iter()
            .enumerate()
            .map(|(i, h)| HostSample {
                host: i,
                latency_us: h.latency_us.clone(),
                completed: h.completed,
                drops: h.drops,
            })
            .collect()
    }

    /// Packages the run's measurements as one fleet sweep point.
    pub fn fleet_point(&self, mode: impl Into<String>, offered_rps: u64) -> FleetPoint {
        FleetPoint::from_hosts(mode, offered_rps, self.sent, self.host_samples())
    }
}
