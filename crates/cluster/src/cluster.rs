//! The deterministic cross-host event loop.
//!
//! A [`Cluster`] composes N independent [`Machine`] hosts under one
//! cluster-level timing wheel ([`EventQueue`]) that carries everything
//! crossing host boundaries: the open-loop request stream arriving at
//! the load balancer and the request deliveries it dispatches onto
//! per-host links. Hosts advance in **lockstep epochs**:
//!
//! 1. pop every cluster event with `t < epoch_end` (LB routing,
//!    request injections into target hosts);
//! 2. step all hosts to `epoch_end − 1 ns` — serially or fanned across
//!    worker threads, hosts share nothing;
//! 3. harvest replies and drops serially in host order;
//! 4. advance migrations and failure machinery, serially.
//!
//! Determinism at any `VSCALE_THREADS`: the epoch length never exceeds
//! the smallest link latency (asserted per host), so a message sent
//! while popping epoch k's events is delivered at
//! `t + latency ≥ epoch_end` — i.e. in a strictly later epoch, *after*
//! the hosts it targets were fully stepped through epoch k. Within an
//! epoch each host therefore evolves only from events already in its
//! local queue, making its trajectory a pure function of its inputs and
//! independent of how hosts are partitioned across workers. Stepping to
//! `epoch_end − 1 ns` (not `epoch_end`) keeps boundary-instant events
//! out of the current epoch entirely, so no same-instant ordering
//! between cluster injection and host-local events ever arises. All
//! failure-domain machinery (crash, restore, migration phase
//! transitions) runs serially at epoch boundaries, so it inherits the
//! same guarantee for free.
//!
//! # Exactly-once accounting under failures
//!
//! The ledger invariant — every request is eventually counted exactly
//! once, as a completion or a drop — survives crashes, restores, and
//! migrations through three small per-backend counters:
//!
//! * `in_wheel`: deliveries scheduled on the cluster wheel but not yet
//!   fired. When a backend dies, that many future `Deliver` events are
//!   stale; `stale` swallows them so they cannot double-inject.
//! * `stale`: wire packets to forget (see above).
//! * `skip`: harvested completions/drops to discard. A restored host
//!   *replays* from its checkpoint, re-completing requests that were
//!   already served or re-queued; `skip` is sized to exactly that
//!   cohort, so replayed work is fenced instead of double-counted.
//!
//! Requests whose backend dies are re-dispatched exactly once (their
//! ledger entries move, they are never duplicated); requests that find
//! no healthy backend park at the LB and flush on recovery. Loss is
//! therefore impossible by construction — only queueing.

use std::collections::VecDeque;

use guest_kernel::thread::IoQueueId;
use metrics::elastic::SloWindow;
use metrics::fleet::{FleetPoint, HostSample, RobustnessStats};
use sim_core::event::EventQueue;
use sim_core::fault::{FaultPlan, SimError};
use sim_core::rng::SimRng;
use sim_core::stats::Histogram;
use sim_core::time::{SimDuration, SimTime};
use vscale::{DomId, Machine};
use workloads::traces::{RateTrace, TraceSampler};
use xen_sched::evtchn::PortId;

use crate::lb::{Health, LbPolicy, LoadBalancer};
use crate::migrate::{dirty_bytes, MigPhase, MigrationConfig, MigrationJob, CONTROL_BYTES};
use crate::net::{Link, LinkConfig};

/// Bytes of one HTTP request on the wire (GET + headers).
pub const REQUEST_BYTES: u64 = 512;

/// Cluster-level parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Lockstep epoch length; must not exceed any host link's latency.
    pub epoch: SimDuration,
    /// Load-balancer policy.
    pub lb: LbPolicy,
    /// Seed for the cluster's own RNG (request inter-arrival jitter).
    pub seed: u64,
    /// Worker threads for host stepping; 0 means
    /// `testkit::parallel::threads_from_env()` (`VSCALE_THREADS`).
    pub threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            epoch: SimDuration::from_us(200),
            lb: LbPolicy::RoundRobin,
            seed: 1,
            threads: 0,
        }
    }
}

/// One Apache-serving VM the load balancer can route to.
#[derive(Clone, Copy, Debug)]
pub struct BackendSpec {
    /// Index of the host the VM runs on.
    pub host: usize,
    /// The serving domain.
    pub dom: DomId,
    /// Event-channel port requests arrive on (`ApacheServer::port`).
    pub port: PortId,
    /// The listen queue (`ApacheServer::queue`), for drop accounting.
    pub queue: IoQueueId,
    /// Reply size on the wire, for the host → LB leg.
    pub reply_bytes: u64,
}

/// Everything crossing host boundaries rides the cluster wheel.
enum NetMsg {
    /// The next request of an open-loop stream reaches the load
    /// balancer.
    Arrival { stream: usize },
    /// A dispatched request reaches its target host's NIC.
    Deliver { backend: usize },
    /// A wheel-scheduled SLO sampling instant: drain the per-host
    /// window accumulators into one [`SloWindow`] for the controller.
    SloSample,
}

/// One open-loop tenant stream: its rate-trace sampler and its end.
struct StreamRt {
    sampler: TraceSampler,
    end: SimTime,
}

struct HostSlot {
    machine: Machine,
    link: Link,
    /// In-window request latencies (LB send → reply back at LB), µs.
    latency_us: Histogram,
    /// In-window completions.
    completed: u64,
    /// In-window listen-backlog drops.
    drops: u64,
    /// Always-on window accumulators for the SLO sampler: latencies,
    /// completions, and drops since the last window drain. Unlike the
    /// measurement-window fields above, these are not gated on
    /// [`Cluster::set_window`] — they are the online sensor the
    /// autoscaler's controller reads, warmup included.
    win_latency_us: Histogram,
    /// Completions since the last window drain.
    win_completed: u64,
    /// Drops since the last window drain.
    win_drops: u64,
    /// False while crashed; a down host is neither stepped nor
    /// harvested and its machine stays frozen at the crash instant.
    up: bool,
    /// False while the host is a powered-down standby: it still steps
    /// (its idle spare VMs keep their daemons' event streams alive) but
    /// its spares are not migration landing slots and it does not count
    /// toward the fleet's host-seconds bill. The autoscaler flips this
    /// on scale-out/in.
    in_service: bool,
    /// When the host went down (for outage-duration accounting).
    down_at: SimTime,
    /// Bumped whenever a VM is extracted from or installed on this host,
    /// so a checkpoint taken before a migration cannot silently restore
    /// a moved VM back to life (exactly-one-live-copy).
    topology: u64,
}

struct BackendSlot {
    spec: BackendSpec,
    /// Send times of dispatched-but-unaccounted requests, FIFO.
    pending: VecDeque<SimTime>,
    /// Completions already harvested from this backend's log.
    seen_completions: usize,
    /// Drops already harvested from this backend's queue counter.
    seen_drops: u64,
    /// Deliveries on the cluster wheel not yet fired.
    in_wheel: u64,
    /// Future deliveries to swallow (scheduled before the backend died;
    /// their requests were re-dispatched).
    stale: u64,
    /// Future harvested completions/drops to discard (checkpoint replay
    /// or a fenced zombie VM re-doing already-accounted work).
    skip: u64,
}

/// A fleet of machines behind one load balancer.
pub struct Cluster {
    config: ClusterConfig,
    queue: EventQueue<NetMsg>,
    now: SimTime,
    hosts: Vec<HostSlot>,
    backends: Vec<BackendSlot>,
    /// Per-backend in-flight counts (the LB's own dispatch ledger).
    outstanding: Vec<u64>,
    /// The LB's health view, maintained by the failure machinery.
    health: Vec<Health>,
    /// True while the backend's VM is detached and on the wire.
    in_blackout: Vec<bool>,
    /// Deliveries that arrived during a blackout, re-sent at cutover or
    /// rollback toward wherever the VM landed.
    held: Vec<u64>,
    /// Requests that found no healthy backend, waiting at the LB.
    parking: VecDeque<SimTime>,
    /// Idle structural-twin domains migrations can land on: (host, dom).
    spares: Vec<(usize, DomId)>,
    migrations: Vec<MigrationJob>,
    robustness: RobustnessStats,
    lb: LoadBalancer,
    /// Open-loop tenant streams, in registration order.
    streams: Vec<StreamRt>,
    /// The legacy constant-stream RNG; [`Cluster::open_loop`] moves it
    /// into the stream's sampler (once), keeping that stream's arrival
    /// sequence byte-identical to the pre-trace loop.
    arrivals_rng: Option<SimRng>,
    /// Seed source for additional trace streams, forked per stream.
    stream_rng_src: SimRng,
    /// SLO sampling period, once installed.
    slo_period: Option<SimDuration>,
    /// Drained SLO windows awaiting the controller, in time order.
    slo_samples: VecDeque<(SimTime, SloWindow)>,
    /// Host `step_to` calls skipped because the host's next-event hint
    /// lay past the epoch horizon (sparse stepping).
    steps_skipped: u64,
    window: (SimTime, SimTime),
    sent: u64,
    /// Scratch for harvest: (completion time, backend index).
    harvest_buf: Vec<(SimTime, usize)>,
    /// Scratch for sparse stepping: per-host due flags.
    due_buf: Vec<bool>,
}

impl Cluster {
    /// An empty cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let mut rng = SimRng::new(config.seed);
        let arrivals_rng = rng.fork(0x434c_5553);
        Cluster {
            queue: EventQueue::new(),
            arrivals_rng: Some(arrivals_rng),
            stream_rng_src: rng,
            now: SimTime::ZERO,
            hosts: Vec::new(),
            backends: Vec::new(),
            outstanding: Vec::new(),
            health: Vec::new(),
            in_blackout: Vec::new(),
            held: Vec::new(),
            parking: VecDeque::new(),
            spares: Vec::new(),
            migrations: Vec::new(),
            robustness: RobustnessStats::default(),
            lb: LoadBalancer::new(config.lb),
            streams: Vec::new(),
            slo_period: None,
            slo_samples: VecDeque::new(),
            steps_skipped: 0,
            window: (SimTime::ZERO, SimTime::MAX),
            sent: 0,
            harvest_buf: Vec::new(),
            due_buf: Vec::new(),
            config,
        }
    }

    /// Adds a host behind `link`; returns its index. The lockstep
    /// guarantee needs `epoch <= link.latency`, asserted here.
    pub fn add_host(&mut self, machine: Machine, link: LinkConfig) -> usize {
        assert!(
            self.config.epoch <= link.latency,
            "epoch {:?} exceeds link latency {:?}: cross-host messages \
             could land inside the epoch that sent them",
            self.config.epoch,
            link.latency,
        );
        self.hosts.push(HostSlot {
            machine,
            link: Link::new(link),
            latency_us: Histogram::new(),
            completed: 0,
            drops: 0,
            win_latency_us: Histogram::new(),
            win_completed: 0,
            win_drops: 0,
            up: true,
            in_service: true,
            down_at: SimTime::ZERO,
            topology: 0,
        });
        self.hosts.len() - 1
    }

    /// Registers a serving VM; returns its backend index.
    pub fn add_backend(&mut self, spec: BackendSpec) -> usize {
        assert!(spec.host < self.hosts.len(), "unknown host {}", spec.host);
        self.backends.push(BackendSlot {
            spec,
            pending: VecDeque::new(),
            seen_completions: 0,
            seen_drops: 0,
            in_wheel: 0,
            stale: 0,
            skip: 0,
        });
        self.outstanding.push(0);
        self.health.push(Health::Healthy);
        self.in_blackout.push(false);
        self.held.push(0);
        self.backends.len() - 1
    }

    /// Registers an idle structural twin of the serving VMs on `host`;
    /// migrations land on spare slots.
    pub fn add_spare(&mut self, host: usize, dom: DomId) {
        assert!(host < self.hosts.len(), "unknown host {host}");
        self.spares.push((host, dom));
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of registered backends.
    pub fn n_backends(&self) -> usize {
        self.backends.len()
    }

    /// Unreserved spare slots.
    pub fn n_spares(&self) -> usize {
        self.spares.len()
    }

    /// The host's machine (e.g. for workload installation before a run).
    pub fn machine_mut(&mut self, host: usize) -> &mut Machine {
        &mut self.hosts[host].machine
    }

    /// Read access to a host's machine.
    pub fn machine(&self, host: usize) -> &Machine {
        &self.hosts[host].machine
    }

    /// Cluster time (last completed epoch boundary).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Requests dispatched inside the measurement window so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Is the host serving (not crashed)?
    pub fn host_up(&self, host: usize) -> bool {
        self.hosts[host].up
    }

    /// The LB's current view of a backend.
    pub fn backend_health(&self, backend: usize) -> Health {
        self.health[backend]
    }

    /// Which host a backend currently lives on (changes at cutover).
    pub fn backend_host(&self, backend: usize) -> usize {
        self.backends[backend].spec.host
    }

    /// Migrations still in flight.
    pub fn active_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// Is this backend the subject of an in-flight migration?
    pub fn backend_migrating(&self, backend: usize) -> bool {
        self.migrations.iter().any(|j| j.backend == backend)
    }

    /// True while `backend`'s VM is detached from its source and its
    /// image is on the wire (the stop-and-copy window).
    pub fn backend_in_blackout(&self, backend: usize) -> bool {
        self.in_blackout[backend]
    }

    /// Robustness counters accumulated so far.
    pub fn robustness(&self) -> &RobustnessStats {
        &self.robustness
    }

    /// Requests dispatched or parked but not yet accounted as a
    /// completion or drop. Zero after a fully drained run — the
    /// zero-request-loss acceptance check.
    pub fn in_flight(&self) -> u64 {
        let pending: u64 = self.backends.iter().map(|b| b.pending.len() as u64).sum();
        pending + self.parking.len() as u64
    }

    /// Restricts latency/drop accounting to requests *sent* in
    /// `[start, end)`; dispatches outside it still run (warmup,
    /// cooldown) but are not measured.
    pub fn set_window(&mut self, start: SimTime, end: SimTime) {
        self.window = (start, end);
    }

    // ------------------------------------------------------------------
    // SLO sampling and the elastic host lifecycle.
    // ------------------------------------------------------------------

    /// Schedules a recurring SLO sampling event on the cluster wheel,
    /// every `period` starting one period from now. Each firing drains
    /// the per-host window accumulators into one [`SloWindow`] held for
    /// [`Cluster::pop_slo_sample`]. Sampling rides the same wheel as
    /// arrivals, so sample instants interleave deterministically with
    /// the load at any `VSCALE_THREADS`.
    pub fn install_slo_sampler(&mut self, period: SimDuration) {
        assert!(!period.is_zero(), "sampling period must be positive");
        assert!(self.slo_period.is_none(), "SLO sampler already installed");
        self.slo_period = Some(period);
        self.queue.schedule(self.now + period, NetMsg::SloSample);
    }

    /// The oldest undelivered SLO sample, if any: (sample instant, the
    /// window since the previous sample).
    pub fn pop_slo_sample(&mut self) -> Option<(SimTime, SloWindow)> {
        self.slo_samples.pop_front()
    }

    /// Drains the current partial SLO window immediately, without
    /// waiting for the next wheel sample — the run-end flush that lets
    /// an elastic run's aggregate ledger account for completions after
    /// the last sample instant.
    pub fn take_slo_window(&mut self) -> SloWindow {
        self.drain_slo_window()
    }

    fn drain_slo_window(&mut self) -> SloWindow {
        let mut w = SloWindow::default();
        for h in &mut self.hosts {
            w.latency_us.merge(&h.win_latency_us);
            h.win_latency_us = Histogram::new();
            w.completed += std::mem::take(&mut h.win_completed);
            w.drops += std::mem::take(&mut h.win_drops);
        }
        w.in_flight = self.in_flight();
        w
    }

    /// Is the host in service (serving capacity, not a parked standby)?
    pub fn host_in_service(&self, host: usize) -> bool {
        self.hosts[host].in_service
    }

    /// Hosts currently up and in service — the fleet's billed capacity.
    pub fn hosts_in_service(&self) -> usize {
        self.hosts.iter().filter(|h| h.up && h.in_service).count()
    }

    /// Moves a host into or out of service. An out-of-service host
    /// still steps (its idle VMs' daemons keep ticking, so a later
    /// activation is deterministic) but its spare slots stop being
    /// migration landing targets. Taking a host out of service requires
    /// that no routable backend still lives on it — evacuate first.
    pub fn set_in_service(&mut self, host: usize, in_service: bool) {
        assert!(host < self.hosts.len(), "unknown host {host}");
        if !in_service {
            let resident = self.backends.iter().enumerate().any(|(b, s)| {
                s.spec.host == host && self.health[b] != Health::Down && !self.in_blackout[b]
            });
            assert!(
                !resident,
                "host {host} still serves routable backends; evacuate before retiring"
            );
        }
        self.hosts[host].in_service = in_service;
    }

    /// Unreserved spare landing slots on one host.
    pub fn spares_on(&self, host: usize) -> usize {
        self.spares.iter().filter(|&&(h, _)| h == host).count()
    }

    /// The LB's in-flight count for one backend.
    pub fn backend_outstanding(&self, backend: usize) -> u64 {
        self.outstanding[backend]
    }

    /// Host `step_to` calls skipped so far by sparse stepping.
    pub fn steps_skipped(&self) -> u64 {
        self.steps_skipped
    }

    /// Starts the classic open-loop request stream: `rate_rps`
    /// requests/s with exponential inter-arrival jitter, first arrival
    /// shortly after `start`, last before `end`. Open-loop means
    /// arrivals never wait for replies — exactly the load regime where
    /// tail latency explodes at saturation.
    ///
    /// Since the trace rework this is sugar for a
    /// [`RateTrace::Constant`] stream over the cluster's original
    /// arrivals RNG, so the arrival sequence is byte-identical to the
    /// pre-trace loop (the committed sweep checksums pin this). Callable
    /// once; additional tenants go through [`Cluster::add_stream`].
    pub fn open_loop(&mut self, rate_rps: f64, start: SimTime, end: SimTime) {
        assert!(rate_rps > 0.0);
        let rng = self
            .arrivals_rng
            .take()
            .expect("one constant stream per run");
        let sampler = TraceSampler::from_rng(RateTrace::Constant { rps: rate_rps }, rng);
        self.push_stream(sampler, start, end);
    }

    /// Starts an additional open-loop tenant stream driven by `trace`,
    /// with its own RNG forked from the cluster seed (streams are
    /// mutually independent and composable); returns the stream index.
    /// First arrival after `start`, last before `end`.
    pub fn add_stream(&mut self, trace: RateTrace, start: SimTime, end: SimTime) -> usize {
        let label = 0x7472_6163u64.wrapping_add(self.streams.len() as u64);
        let sampler = TraceSampler::from_rng(trace, self.stream_rng_src.fork(label));
        self.push_stream(sampler, start, end)
    }

    fn push_stream(&mut self, mut sampler: TraceSampler, start: SimTime, end: SimTime) -> usize {
        let stream = self.streams.len();
        let first = sampler.next_arrival(start);
        if first < end {
            self.queue.schedule(first, NetMsg::Arrival { stream });
        }
        self.streams.push(StreamRt { sampler, end });
        stream
    }

    fn in_window(&self, t: SimTime) -> bool {
        t >= self.window.0 && t < self.window.1
    }

    fn handle(&mut self, t: SimTime, msg: NetMsg) {
        match msg {
            NetMsg::Arrival { stream } => {
                self.dispatch(t);
                let s = &mut self.streams[stream];
                let next = s.sampler.next_arrival(t);
                if next < s.end {
                    self.queue.schedule(next, NetMsg::Arrival { stream });
                }
            }
            NetMsg::SloSample => {
                let window = self.drain_slo_window();
                self.slo_samples.push_back((t, window));
                let period = self.slo_period.expect("sample without a sampler");
                self.queue.schedule(t + period, NetMsg::SloSample);
            }
            NetMsg::Deliver { backend } => {
                {
                    let slot = &mut self.backends[backend];
                    slot.in_wheel -= 1;
                    if slot.stale > 0 {
                        // The request this packet carried was re-queued
                        // when its backend died; forget the packet.
                        slot.stale -= 1;
                        return;
                    }
                }
                if self.in_blackout[backend] {
                    // The VM is on the wire mid-cutover: hold the
                    // delivery, re-send it wherever the VM lands.
                    self.held[backend] += 1;
                    return;
                }
                let spec = self.backends[backend].spec;
                debug_assert!(
                    self.hosts[spec.host].up,
                    "a delivery to a down host must have been staled or held"
                );
                self.hosts[spec.host]
                    .machine
                    .inject_io(spec.dom, spec.port, t, 1);
            }
        }
    }

    fn dispatch(&mut self, t: SimTime) {
        if self.in_window(t) {
            self.sent += 1;
        }
        self.route(t, t);
    }

    /// Routes a request onto a healthy backend, putting it on the wire
    /// at `wire_at` (`send` is the original arrival time, kept for
    /// latency accounting across re-queues); parks it at the LB when
    /// nothing is routable.
    fn route(&mut self, send: SimTime, wire_at: SimTime) {
        let Some(b) = self.lb.pick(&self.outstanding, &self.health) else {
            self.parking.push_back(send);
            return;
        };
        let host = self.backends[b].spec.host;
        let deliver_at = self.hosts[host].link.send_request(wire_at, REQUEST_BYTES);
        self.queue
            .schedule(deliver_at, NetMsg::Deliver { backend: b });
        self.backends[b].pending.push_back(send);
        self.backends[b].in_wheel += 1;
        self.outstanding[b] += 1;
    }

    /// Re-dispatches parked requests while any backend is healthy.
    fn flush_parking(&mut self) {
        let now = self.now;
        while !self.parking.is_empty() {
            if !self.health.contains(&Health::Healthy) {
                return;
            }
            let send = self.parking.pop_front().expect("checked non-empty");
            self.route(send, now);
        }
    }

    /// Runs the lockstep loop to `deadline` (an epoch multiple is not
    /// required; the final epoch is clipped).
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        assert!(!self.hosts.is_empty(), "no hosts");
        while self.now < deadline {
            let epoch_end = (self.now + self.config.epoch).min(deadline);
            // 1. Cross-host deliveries and LB routing due this epoch,
            //    batch-drained (one wheel settle per distinct instant).
            let lb_deadline = SimTime::from_ns(epoch_end.as_ns() - 1);
            while let Some((t, msg)) = self.queue.pop_next_until(lb_deadline) {
                self.handle(t, msg);
            }
            // 2. Step every live host through the epoch.
            self.step_hosts(SimTime::from_ns(epoch_end.as_ns() - 1))?;
            // 3. Serial harvest in host order.
            self.harvest();
            self.now = epoch_end;
            // 4. Serial migration progress at the boundary.
            self.advance_migrations();
        }
        Ok(())
    }

    /// Steps all live hosts to `to`, fanning across workers when
    /// configured. Results are collected per host and the first error
    /// (in host order) is returned, so the error too is independent of
    /// the thread count.
    ///
    /// Sparse stepping: a host whose next-event hint lies past `to` has
    /// provably nothing to do this epoch — `step_to` would pop nothing
    /// and mutate nothing (`pop_next_until` leaves `now` untouched when
    /// the earliest event is beyond the deadline) — so it is skipped
    /// entirely. The hint is conservative (may be early, never late),
    /// so a wrong hint only costs a harmless no-op step, never a missed
    /// event. Due flags are computed serially before any fan-out, which
    /// keeps the skip counter and the work partition independent of the
    /// thread count.
    fn step_hosts(&mut self, to: SimTime) -> Result<(), SimError> {
        let n = self.hosts.len();
        let mut due = std::mem::take(&mut self.due_buf);
        due.clear();
        due.resize(n, false);
        let mut any_due = false;
        for (i, h) in self.hosts.iter().enumerate() {
            if !h.up {
                continue;
            }
            match h.machine.peek_time_hint() {
                Some(hint) if hint <= to => {
                    due[i] = true;
                    any_due = true;
                }
                // Beyond the horizon, or a (theoretical) empty queue:
                // stepping would be a no-op.
                Some(_) | None => self.steps_skipped += 1,
            }
        }
        if !any_due {
            self.due_buf = due;
            return Ok(());
        }
        let threads = match self.config.threads {
            0 => testkit::parallel::threads_from_env(),
            t => t,
        }
        .min(n)
        .max(1);
        let result = if threads == 1 {
            let mut first_err = None;
            for (i, h) in self.hosts.iter_mut().enumerate() {
                if !due[i] {
                    continue;
                }
                if let Err(e) = h.machine.step_to(to) {
                    first_err.get_or_insert(e);
                }
            }
            match first_err {
                None => Ok(()),
                Some(e) => Err(e),
            }
        } else {
            let chunk = n.div_ceil(threads);
            let results: Vec<Result<(), SimError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .hosts
                    .chunks_mut(chunk)
                    .zip(due.chunks(chunk))
                    .map(|(hs, ds)| {
                        scope.spawn(move || {
                            hs.iter_mut()
                                .zip(ds)
                                .map(|(h, &d)| if d { h.machine.step_to(to) } else { Ok(()) })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Chunks are contiguous and joined in order, so the
                // flattened results are in host order.
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("host worker panicked"))
                    .collect()
            });
            results.into_iter().collect()
        };
        self.due_buf = due;
        result
    }

    /// Matches new replies and drops against the dispatch ledger.
    ///
    /// Completions are matched FIFO per backend: per-request identity
    /// does not survive the Apache model's worker pool, and workers can
    /// reorder service completion slightly, so an individual latency
    /// sample may pair a reply with a neighbouring request's send time.
    /// Counts are exact, the pairing is deterministic, and the
    /// distortion is bounded by in-VM queueing spread — negligible off
    /// saturation, documented noise at it (re-queued requests add the
    /// same class of noise on the backend they land on). Listen-queue
    /// drops likewise retire the oldest pending entries (real drops hit
    /// the batch tail), keeping the ledger length exact. Down hosts are
    /// frozen and skipped; detached (mid-cutover) backends carry their
    /// logs in the image and are skipped until they land; `skip`
    /// discards exactly the replayed/fenced cohort after a restore.
    fn harvest(&mut self) {
        for host_idx in 0..self.hosts.len() {
            if !self.hosts[host_idx].up {
                continue;
            }
            // Gather this host's new completions across its backends in
            // completion-time order — its reply link serializes them in
            // that order regardless of which VM sent what.
            let mut buf = std::mem::take(&mut self.harvest_buf);
            buf.clear();
            for (bidx, b) in self.backends.iter_mut().enumerate() {
                if b.spec.host != host_idx || self.in_blackout[bidx] {
                    continue;
                }
                let (_, _, completions) = self.hosts[host_idx].machine.io_logs(b.spec.dom);
                for &c in &completions[b.seen_completions..] {
                    buf.push((c, bidx));
                }
                b.seen_completions = completions.len();
            }
            buf.sort_unstable();
            let host = &mut self.hosts[host_idx];
            for &(c, bidx) in buf.iter() {
                let b = &mut self.backends[bidx];
                if b.skip > 0 {
                    // Replay of already-accounted work (or a fenced
                    // zombie's reply): discard, don't double-serve.
                    b.skip -= 1;
                    continue;
                }
                let send = b
                    .pending
                    .pop_front()
                    .expect("reply without a pending request");
                self.outstanding[bidx] -= 1;
                let reply_at = host.link.send_reply(c, b.spec.reply_bytes);
                // The SLO-window accumulators see every completion —
                // they are the controller's online sensor, not gated on
                // the offline measurement window.
                host.win_latency_us.record(reply_at.since(send).as_us());
                host.win_completed += 1;
                if send >= self.window.0 && send < self.window.1 {
                    host.latency_us.record(reply_at.since(send).as_us());
                    host.completed += 1;
                }
            }
            self.harvest_buf = buf;
            // Listen-queue overflows: retire dropped requests.
            for (bidx, b) in self.backends.iter_mut().enumerate() {
                if b.spec.host != host_idx || self.in_blackout[bidx] {
                    continue;
                }
                let total = self.hosts[host_idx]
                    .machine
                    .guest(b.spec.dom)
                    .io_drops(b.spec.queue);
                debug_assert!(total >= b.seen_drops, "drop counter rewound");
                for _ in 0..total.saturating_sub(b.seen_drops) {
                    if b.skip > 0 {
                        b.skip -= 1;
                        continue;
                    }
                    let send = b.pending.pop_front().expect("drop without a request");
                    self.outstanding[bidx] -= 1;
                    self.hosts[host_idx].win_drops += 1;
                    if send >= self.window.0 && send < self.window.1 {
                        self.hosts[host_idx].drops += 1;
                    }
                }
                b.seen_drops = total;
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure domains: backend health, host crash/restore.
    // ------------------------------------------------------------------

    /// Puts a healthy backend into connection draining: it finishes
    /// what it holds but receives nothing new.
    pub fn drain_backend(&mut self, backend: usize) {
        assert_eq!(
            self.health[backend],
            Health::Healthy,
            "can only drain a healthy backend"
        );
        self.health[backend] = Health::Draining;
    }

    /// Returns a drained backend to rotation.
    pub fn undrain_backend(&mut self, backend: usize) {
        assert_eq!(self.health[backend], Health::Draining);
        self.health[backend] = Health::Healthy;
        self.flush_parking();
    }

    /// Marks a backend's VM as failed while its host lives on. Its
    /// in-flight requests are re-queued exactly once; any replies the
    /// zombie VM still produces are fenced (discarded), so nothing is
    /// lost and nothing is double-served.
    pub fn fail_backend(&mut self, backend: usize) {
        assert!(
            !self.in_blackout[backend],
            "cannot fail a backend mid-cutover"
        );
        assert_ne!(
            self.health[backend],
            Health::Down,
            "backend {backend} already down"
        );
        let spec = self.backends[backend].spec;
        assert!(
            self.hosts[spec.host].up,
            "host-level failure is crash_host's job"
        );
        self.health[backend] = Health::Down;
        // Everything injected but unaccounted will still be completed or
        // dropped by the zombie; fence that entire cohort.
        let arrivals = {
            let (arrivals, _, _) = self.hosts[spec.host].machine.io_logs(spec.dom);
            arrivals.len() as u64
        };
        let slot = &mut self.backends[backend];
        slot.skip += arrivals - slot.seen_completions as u64 - slot.seen_drops;
        slot.stale += slot.in_wheel;
        let pending: Vec<SimTime> = slot.pending.drain(..).collect();
        self.outstanding[backend] = 0;
        self.robustness.requests_requeued += pending.len() as u64;
        let now = self.now;
        for send in pending {
            self.route(send, now);
        }
    }

    /// Whole-host fail-stop crash: the machine freezes at the current
    /// instant, every backend on it goes down, and all their in-flight
    /// requests are re-dispatched exactly once. Migrations touching the
    /// host are settled first (pre-copies abort; a cutover whose
    /// destination died rolls back; a cutover whose *source* died keeps
    /// going — the in-flight image is the sole live copy).
    pub fn crash_host(&mut self, host: usize) {
        assert!(self.hosts[host].up, "host {host} already down");
        self.hosts[host].up = false;
        self.hosts[host].down_at = self.now;
        self.robustness.hosts_down += 1;
        self.settle_migrations_for_crash(host);
        for bidx in 0..self.backends.len() {
            if self.backends[bidx].spec.host != host || self.in_blackout[bidx] {
                continue;
            }
            self.health[bidx] = Health::Down;
            let slot = &mut self.backends[bidx];
            slot.stale += slot.in_wheel;
            // The frozen machine produces nothing until a restore, which
            // recomputes the replay fence from the restored state.
            slot.skip = 0;
            let pending: Vec<SimTime> = slot.pending.drain(..).collect();
            self.outstanding[bidx] = 0;
            self.robustness.requests_requeued += pending.len() as u64;
            let now = self.now;
            for send in pending {
                self.route(send, now);
            }
        }
    }

    /// Checkpoints a live host's full machine state (all VMs, scheduler,
    /// pending events). The image is fenced against topology changes:
    /// restoring it after a VM migrated in or out is refused, because it
    /// would resurrect a moved VM and violate exactly-one-live-copy.
    pub fn checkpoint_host(&mut self, host: usize) -> Vec<u8> {
        assert!(self.hosts[host].up, "cannot checkpoint a down host");
        assert!(
            self.migrations
                .iter()
                .all(|j| self.backends[j.backend].spec.host != host && j.dst_host != host),
            "cannot checkpoint host {host} mid-migration"
        );
        let mut out = self.hosts[host].topology.to_le_bytes().to_vec();
        out.extend(self.hosts[host].machine.checkpoint());
        out
    }

    /// Restores a crashed host from a [`checkpoint_host`] image and
    /// returns its backends to rotation. The machine rewinds to the
    /// checkpoint instant and deterministically replays forward; every
    /// completion/drop it re-produces for work that was already
    /// accounted (or re-queued at the crash) is discarded via the
    /// per-backend `skip` fence, so the restore is exactly-once too.
    ///
    /// [`checkpoint_host`]: Cluster::checkpoint_host
    pub fn restore_host(&mut self, host: usize, image: &[u8]) {
        assert!(!self.hosts[host].up, "restore targets a crashed host");
        assert!(
            self.migrations
                .iter()
                .all(|j| self.backends[j.backend].spec.host != host && j.dst_host != host),
            "cannot restore host {host} while a migration involves it"
        );
        let (tp, machine_image) = image.split_at(8);
        let tp = u64::from_le_bytes(tp.try_into().expect("8-byte topology prefix"));
        assert_eq!(
            tp, self.hosts[host].topology,
            "stale checkpoint: a VM migrated in or out of host {host} after \
             it was taken; restoring would resurrect a moved VM"
        );
        self.hosts[host].machine.restore(machine_image);
        self.hosts[host].up = true;
        let outage = self.now.since(self.hosts[host].down_at);
        self.robustness.downtime_us.record(outage.as_us());
        self.robustness.hosts_restored += 1;
        for bidx in 0..self.backends.len() {
            let spec = self.backends[bidx].spec;
            if spec.host != host {
                continue;
            }
            // Size the replay fence: everything in-guest at the
            // checkpoint plus deliveries still on the machine's wheel
            // will be re-completed or re-dropped on replay, and every
            // one of those requests was either already served or
            // re-queued at the crash.
            let (arrived, completed) = {
                let (arrivals, _, completions) = self.hosts[host].machine.io_logs(spec.dom);
                (arrivals.len() as u64, completions.len())
            };
            let dropped = self.hosts[host]
                .machine
                .guest(spec.dom)
                .io_drops(spec.queue);
            let wheel = self.hosts[host].machine.pending_io_items(spec.dom);
            let slot = &mut self.backends[bidx];
            slot.seen_completions = completed;
            slot.seen_drops = dropped;
            slot.skip = arrived - completed as u64 - dropped + wheel;
            self.health[bidx] = Health::Healthy;
        }
        self.flush_parking();
    }

    // ------------------------------------------------------------------
    // Live migration.
    // ------------------------------------------------------------------

    /// Starts migrating `backend` to a spare slot on `dst_host`.
    /// Panics if the destination has no spare; see
    /// [`evacuate_host`](Cluster::evacuate_host) for the policy-driven
    /// variant that skips instead.
    pub fn start_migration(&mut self, backend: usize, dst_host: usize, cfg: MigrationConfig) {
        assert!(
            self.try_start_migration(backend, dst_host, cfg, false),
            "no spare slot on host {dst_host}"
        );
    }

    fn try_start_migration(
        &mut self,
        backend: usize,
        dst_host: usize,
        cfg: MigrationConfig,
        evacuation: bool,
    ) -> bool {
        assert_eq!(
            self.health[backend],
            Health::Healthy,
            "can only migrate a healthy backend"
        );
        assert!(
            self.migrations.iter().all(|j| j.backend != backend),
            "backend {backend} is already migrating"
        );
        assert!(
            self.hosts[dst_host].up,
            "destination host {dst_host} is down"
        );
        assert!(
            self.hosts[dst_host].in_service,
            "destination host {dst_host} is out of service; activate it first"
        );
        let src = self.backends[backend].spec.host;
        assert_ne!(src, dst_host, "source and destination are the same host");
        let Some(pos) = self.spares.iter().position(|&(h, _)| h == dst_host) else {
            return false;
        };
        let (_, dst_dom) = self.spares.remove(pos);
        let mut job = MigrationJob {
            backend,
            dst_host,
            dst_dom,
            plan: cfg.faults.map(FaultPlan::new),
            link: Link::new(cfg.link),
            cfg,
            rounds: 0,
            evacuation,
            phase: MigPhase::Settled,
        };
        let now = self.now;
        let spec = self.backends[backend].spec;
        let probe = self.hosts[src].machine.vm_image_bytes(spec.dom);
        if job.cfg.precopy {
            let bytes = dirty_bytes(&[], &probe) + CONTROL_BYTES;
            let (done_at, lost) = job.transfer(now, bytes);
            job.phase = MigPhase::PreCopy {
                synced: Vec::new(),
                sent_probe: probe,
                done_at,
                lost,
            };
        } else {
            // Cold path: stop-and-copy everything immediately, budget
            // not consulted — the fallback for hosts dying faster than
            // pre-copy can converge.
            let dirty = dirty_bytes(&[], &probe);
            self.begin_blackout(&mut job, dirty);
        }
        self.migrations.push(job);
        true
    }

    /// Evacuation policy for a dying host: live-migrate every healthy
    /// backend it serves onto spare slots elsewhere. Each backend lands
    /// on the least-outstanding candidate — among up, in-service hosts
    /// with a free spare, the one whose resident backends hold the
    /// fewest in-flight requests, ties broken by fewer already-inbound
    /// migrations and then by lowest host index (so one evacuation
    /// spreads rather than piling onto a single receiver). Returns the
    /// number of migrations started; backends without a landing slot
    /// stay put. [`start_migration`](Cluster::start_migration) remains
    /// the explicit-target API.
    pub fn evacuate_host(&mut self, host: usize, cfg: MigrationConfig) -> usize {
        assert!(
            self.hosts[host].up,
            "cannot evacuate a down host; restore it first"
        );
        let mut started = 0;
        for b in 0..self.backends.len() {
            if self.backends[b].spec.host != host || self.health[b] != Health::Healthy {
                continue;
            }
            if self.migrations.iter().any(|j| j.backend == b) {
                continue;
            }
            let Some(dst) = self.pick_landing_host(host) else {
                break;
            };
            if self.try_start_migration(b, dst, cfg, true) {
                started += 1;
            }
        }
        started
    }

    /// The least-outstanding landing host for a migration off `src`:
    /// minimizes (resident in-flight requests, inbound migrations, host
    /// index) over up, in-service hosts ≠ `src` that hold a free spare.
    fn pick_landing_host(&self, src: usize) -> Option<usize> {
        let mut best: Option<(u64, usize, usize)> = None;
        for h in 0..self.hosts.len() {
            if h == src || !self.hosts[h].up || !self.hosts[h].in_service {
                continue;
            }
            if !self.spares.iter().any(|&(sh, _)| sh == h) {
                continue;
            }
            let outstanding: u64 = self
                .backends
                .iter()
                .enumerate()
                .filter(|(_, s)| s.spec.host == h)
                .map(|(b, _)| self.outstanding[b])
                .sum();
            let inbound = self.migrations.iter().filter(|j| j.dst_host == h).count();
            let key = (outstanding, inbound, h);
            if best.is_none_or(|k| key < k) {
                best = Some(key);
            }
        }
        best.map(|(_, _, h)| h)
    }

    fn advance_migrations(&mut self) {
        let mut i = 0;
        while i < self.migrations.len() {
            let mut job = self.migrations.remove(i);
            if !self.step_job(&mut job) {
                self.migrations.insert(i, job);
                i += 1;
            }
        }
    }

    /// Advances one job at an epoch boundary; true when it finished.
    fn step_job(&mut self, job: &mut MigrationJob) -> bool {
        let now = self.now;
        match &job.phase {
            MigPhase::PreCopy { done_at, .. } if now < *done_at => return false,
            MigPhase::Blackout { arrive_at, .. } if now < *arrive_at => return false,
            MigPhase::Settled => unreachable!("settled job left in the queue"),
            _ => {}
        }
        match std::mem::replace(&mut job.phase, MigPhase::Settled) {
            MigPhase::PreCopy {
                synced,
                sent_probe,
                lost,
                ..
            } => self.finish_round(job, synced, sent_probe, lost),
            MigPhase::Blackout {
                stopped_at,
                arrive_at,
                image,
                lost,
            } => {
                self.finish_cutover(job, stopped_at, arrive_at, image, lost);
                true
            }
            MigPhase::Settled => unreachable!(),
        }
    }

    /// A pre-copy round's transfer deadline passed: re-probe, decide
    /// between cutover, another round, and abort. Returns job-finished.
    fn finish_round(
        &mut self,
        job: &mut MigrationJob,
        synced: Vec<u8>,
        sent_probe: Vec<u8>,
        lost: bool,
    ) -> bool {
        let now = self.now;
        job.rounds += 1;
        self.robustness.precopy_rounds += 1;
        // A lost transfer leaves the destination where it was; the round
        // still counts against the cap (capped retries).
        let synced = if lost { synced } else { sent_probe };
        let spec = self.backends[job.backend].spec;
        let probe = self.hosts[spec.host].machine.vm_image_bytes(spec.dom);
        let dirty = dirty_bytes(&synced, &probe);
        let blackout_cost = job.cfg.link.wire_time(dirty + CONTROL_BYTES) + job.cfg.link.latency;
        if blackout_cost <= job.cfg.downtime_budget {
            self.begin_blackout(job, dirty);
            false
        } else if job.rounds >= job.cfg.max_rounds {
            // Rounds exhausted without convergence: abort. The source
            // VM never stopped, so there is nothing to roll back.
            self.robustness.migrations_aborted += 1;
            self.spares.push((job.dst_host, job.dst_dom));
            true
        } else {
            let (done_at, lost) = job.transfer(now, dirty + CONTROL_BYTES);
            job.phase = MigPhase::PreCopy {
                synced,
                sent_probe: probe,
                done_at,
                lost,
            };
            false
        }
    }

    /// Stop-and-copy: detach the VM from the source and put the final
    /// image on the wire. The source keeps an inert shell the image can
    /// roll back into.
    fn begin_blackout(&mut self, job: &mut MigrationJob, dirty: u64) {
        let now = self.now;
        let spec = self.backends[job.backend].spec;
        let image = self.hosts[spec.host].machine.extract_vm(spec.dom);
        self.hosts[spec.host].topology += 1;
        self.health[job.backend] = Health::Draining;
        self.in_blackout[job.backend] = true;
        let (arrive_at, lost) = job.transfer(now, dirty + CONTROL_BYTES);
        job.phase = MigPhase::Blackout {
            stopped_at: now,
            arrive_at,
            image,
            lost,
        };
    }

    /// The cutover transfer's deadline passed: install on the
    /// destination, or roll back to the source shell. The downtime
    /// budget is hard — a transfer delayed past it rolls back rather
    /// than extending the blackout.
    fn finish_cutover(
        &mut self,
        job: &mut MigrationJob,
        stopped_at: SimTime,
        arrive_at: SimTime,
        image: Vec<u8>,
        lost: bool,
    ) {
        let now = self.now;
        let b = job.backend;
        let src = self.backends[b].spec.host;
        let dst_up = self.hosts[job.dst_host].up;
        let over_budget = job.cfg.precopy && arrive_at.since(stopped_at) > job.cfg.downtime_budget;
        let downtime = now.since(stopped_at);
        if lost || !dst_up || over_budget {
            if self.hosts[src].up {
                // Roll back: the source shell absorbs the image and the
                // VM resumes exactly where it stopped.
                self.hosts[src]
                    .machine
                    .install_vm(self.backends[b].spec.dom, &image);
                self.hosts[src].topology += 1;
                self.in_blackout[b] = false;
                self.health[b] = Health::Healthy;
                self.release_held(b);
                if dst_up {
                    self.spares.push((job.dst_host, job.dst_dom));
                }
                self.robustness.migrations_aborted += 1;
                self.robustness.downtime_us.record(downtime.as_us());
                self.flush_parking();
            } else {
                // Source crashed after extraction AND the transfer
                // failed: no live copy remains. The requests must still
                // be accounted — re-queue everything exactly once.
                self.in_blackout[b] = false;
                self.health[b] = Health::Down;
                self.held[b] = 0;
                {
                    let slot = &mut self.backends[b];
                    slot.stale += slot.in_wheel;
                    slot.skip = 0;
                }
                let pending: Vec<SimTime> = self.backends[b].pending.drain(..).collect();
                self.outstanding[b] = 0;
                self.robustness.migrations_aborted += 1;
                self.robustness.requests_requeued += pending.len() as u64;
                for send in pending {
                    self.route(send, now);
                }
            }
        } else {
            // Cutover: the destination twin absorbs the image (its idle
            // shell is discarded); the vacated source shell becomes a
            // spare. The backend's ledger, logs, and watermarks all
            // travel inside the image, so accounting continues
            // seamlessly on the new host.
            let dst = &mut self.hosts[job.dst_host];
            let _idle_shell = dst.machine.extract_vm(job.dst_dom);
            dst.machine.install_vm(job.dst_dom, &image);
            dst.topology += 2;
            let old = self.backends[b].spec;
            if self.hosts[old.host].up {
                self.spares.push((old.host, old.dom));
            }
            self.backends[b].spec.host = job.dst_host;
            self.backends[b].spec.dom = job.dst_dom;
            self.in_blackout[b] = false;
            self.health[b] = Health::Healthy;
            self.release_held(b);
            self.robustness.migrations_ok += 1;
            if job.evacuation {
                self.robustness.vms_evacuated += 1;
            }
            self.robustness.downtime_us.record(downtime.as_us());
            self.flush_parking();
        }
    }

    /// Re-sends deliveries held during a blackout toward wherever the
    /// VM landed (destination after cutover, source after rollback).
    fn release_held(&mut self, backend: usize) {
        let n = std::mem::take(&mut self.held[backend]);
        if n == 0 {
            return;
        }
        let host = self.backends[backend].spec.host;
        let now = self.now;
        for _ in 0..n {
            let deliver_at = self.hosts[host].link.send_request(now, REQUEST_BYTES);
            self.queue.schedule(deliver_at, NetMsg::Deliver { backend });
            self.backends[backend].in_wheel += 1;
        }
    }

    /// Settles every migration touching a crashing host, *before* its
    /// backends are torn down.
    fn settle_migrations_for_crash(&mut self, host: usize) {
        let mut i = 0;
        while i < self.migrations.len() {
            let src = self.backends[self.migrations[i].backend].spec.host;
            let dst = self.migrations[i].dst_host;
            if src != host && dst != host {
                i += 1;
                continue;
            }
            let mut job = self.migrations.remove(i);
            match std::mem::replace(&mut job.phase, MigPhase::Settled) {
                MigPhase::PreCopy { .. } => {
                    // The stream dies with either endpoint. A dead
                    // source's backend is re-queued by crash_host's main
                    // loop; a dead destination leaves the source VM
                    // serving untouched.
                    self.robustness.migrations_aborted += 1;
                    if dst != host && self.hosts[dst].up {
                        self.spares.push((job.dst_host, job.dst_dom));
                    }
                }
                MigPhase::Blackout {
                    stopped_at,
                    arrive_at,
                    image,
                    lost,
                } => {
                    if dst == host {
                        // Destination died mid-cutover: roll back to the
                        // source now (finish_cutover sees dst down).
                        self.finish_cutover(&mut job, stopped_at, arrive_at, image, lost);
                    } else {
                        // Source died after extraction: the in-flight
                        // image is the sole live copy; let the cutover
                        // finish on the destination.
                        job.phase = MigPhase::Blackout {
                            stopped_at,
                            arrive_at,
                            image,
                            lost,
                        };
                        self.migrations.insert(i, job);
                        i += 1;
                    }
                }
                MigPhase::Settled => unreachable!(),
            }
        }
    }

    /// The per-host measurement samples (for [`FleetPoint::from_hosts`]).
    pub fn host_samples(&self) -> Vec<HostSample> {
        self.hosts
            .iter()
            .enumerate()
            .map(|(i, h)| HostSample {
                host: i,
                latency_us: h.latency_us.clone(),
                completed: h.completed,
                drops: h.drops,
            })
            .collect()
    }

    /// Packages the run's measurements as one fleet sweep point,
    /// attaching robustness counters only when failure machinery
    /// actually fired (an undisturbed run serializes identically to one
    /// from a build without failure support). The sparse-stepping skip
    /// counter rides along the same way: serialized only when non-zero.
    pub fn fleet_point(&self, mode: impl Into<String>, offered_rps: u64) -> FleetPoint {
        let point = FleetPoint::from_hosts(mode, offered_rps, self.sent, self.host_samples())
            .with_steps_skipped(self.steps_skipped);
        if self.robustness.is_zero() {
            point
        } else {
            point.with_robustness(self.robustness.clone())
        }
    }
}
