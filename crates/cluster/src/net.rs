//! The virtual datacenter network: per-host links with bandwidth
//! serialization and propagation latency.
//!
//! Each host hangs off the front-end load balancer by one full-duplex
//! link. A transfer occupies its direction of the link for
//! `bytes / bandwidth` (serialization), then propagates for the link
//! latency. Serialization is modeled with a per-direction `busy_until`
//! cursor — transfers queue behind each other exactly as on a real
//! top-of-rack port — while propagation delays overlap freely.
//!
//! The propagation latency doubles as the cluster's determinism
//! foundation: the lockstep epoch length must not exceed the smallest
//! link latency, which guarantees a message sent during one epoch is
//! delivered in a strictly later epoch (see `cluster.rs`).

use sim_core::time::{SimDuration, SimTime};

/// Static parameters of one load-balancer ↔ host link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkConfig {
    /// Link bandwidth, bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency (switching + cabling + kernel stack).
    pub latency: SimDuration,
}

impl LinkConfig {
    /// A typical intra-datacenter path: 10 GbE through one ToR switch,
    /// 200 µs one-way (the figure LiveStack-style cluster models use for
    /// same-facility RTTs of a few hundred µs).
    pub fn datacenter() -> Self {
        LinkConfig {
            bandwidth_bps: 10_000_000_000,
            latency: SimDuration::from_us(200),
        }
    }

    /// Serialization time of `bytes` on this link, rounded up to a whole
    /// nanosecond so repeated transfers accumulate deterministically in
    /// integer time.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        assert!(self.bandwidth_bps > 0);
        let bits = (bytes as u128) * 8 * 1_000_000_000;
        let ns = bits.div_ceil(self.bandwidth_bps as u128);
        SimDuration::from_ns(ns as u64)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::datacenter()
    }
}

/// Runtime state of one link: a serialization cursor per direction.
#[derive(Clone, Debug)]
pub struct Link {
    /// The link's static parameters.
    pub config: LinkConfig,
    /// Request direction (LB → host) busy-until cursor.
    tx_busy: SimTime,
    /// Reply direction (host → LB) busy-until cursor.
    rx_busy: SimTime,
}

impl Link {
    /// A fresh, idle link.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            tx_busy: SimTime::ZERO,
            rx_busy: SimTime::ZERO,
        }
    }

    /// Sends `bytes` toward the host at `at`; returns the arrival time
    /// (queue behind earlier transfers + serialize + propagate).
    pub fn send_request(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let start = if at > self.tx_busy { at } else { self.tx_busy };
        let done = start + self.config.wire_time(bytes);
        self.tx_busy = done;
        done + self.config.latency
    }

    /// Sends `bytes` back toward the load balancer at `at`; returns the
    /// arrival time at the LB.
    pub fn send_reply(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let start = if at > self.rx_busy { at } else { self.rx_busy };
        let done = start + self.config.wire_time(bytes);
        self.rx_busy = done;
        done + self.config.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_rounds_up_and_scales() {
        let l = LinkConfig {
            bandwidth_bps: 1_000_000_000,
            latency: SimDuration::from_us(150),
        };
        // 16.5 KB at 1 Gb/s = 135168 ns exactly.
        assert_eq!(l.wire_time(16 * 1024 + 512), SimDuration::from_ns(135_168));
        // 1 byte = 8 ns.
        assert_eq!(l.wire_time(1), SimDuration::from_ns(8));
        // Rounding up: 1 byte at 3 bps = ceil(8e9/3) ns.
        let odd = LinkConfig {
            bandwidth_bps: 3,
            latency: SimDuration::ZERO,
        };
        assert_eq!(odd.wire_time(1), SimDuration::from_ns(2_666_666_667));
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut link = Link::new(LinkConfig {
            bandwidth_bps: 1_000_000_000,
            latency: SimDuration::from_us(100),
        });
        let t0 = SimTime::from_us(10);
        let wire = link.config.wire_time(1_000); // 8 µs
        let a = link.send_request(t0, 1_000);
        let b = link.send_request(t0, 1_000);
        assert_eq!(a, t0 + wire + link.config.latency);
        assert_eq!(b, t0 + wire + wire + link.config.latency);
        // The reply direction is independent.
        let r = link.send_reply(t0, 1_000);
        assert_eq!(r, a);
    }
}
