//! Cross-host determinism: a fleet run is a pure function of its
//! configuration, byte-identical at any worker-thread count — the
//! property `scripts/verify.sh` holds for every bench JSON line,
//! checked here at the cluster layer directly, including under an
//! injected fault plan.

use cluster::{build_web_fleet, ClusterConfig, LbPolicy, WebFleetConfig};
use sim_core::fault::FaultConfig;
use sim_core::time::{SimDuration, SimTime};

/// Runs one small fleet to completion and returns every observable the
/// bench would serialize: the fleet point JSON (quantiles, per-host
/// breakdowns, drop counts) plus per-host domain-stat fingerprints.
fn fleet_run(threads: usize, lb: LbPolicy, fault: Option<FaultConfig>) -> String {
    let fleet = WebFleetConfig {
        hosts: 3,
        desktops_per_host: 1,
        fault,
        ..WebFleetConfig::default()
    };
    let mut c = build_web_fleet(
        fleet,
        ClusterConfig {
            threads,
            lb,
            ..ClusterConfig::default()
        },
    );
    let start = SimTime::from_ms(40);
    let end = SimTime::from_ms(340);
    c.set_window(start, end);
    c.open_loop(3_000.0, SimTime::ZERO, end);
    c.run_until(end + SimDuration::from_ms(50)).expect("runs");
    let mut out = c.fleet_point("test", 3_000).to_json();
    for host in 0..c.n_hosts() {
        let m = c.machine(host);
        for dom in 0..2 {
            let st = m.domain_stats(vscale::DomId(dom));
            out.push_str(&format!(
                "\nhost{host} dom{dom} {:?} {:?} {}",
                st.run_total, st.wait_total, st.reconfigs
            ));
        }
    }
    out
}

#[test]
fn fleet_is_byte_identical_across_thread_counts() {
    for lb in [LbPolicy::RoundRobin, LbPolicy::LeastOutstanding] {
        let serial = fleet_run(1, lb, None);
        for threads in [2, 4] {
            assert_eq!(
                serial,
                fleet_run(threads, lb, None),
                "fleet diverged at threads={threads} lb={lb:?}"
            );
        }
    }
}

#[test]
fn faulted_fleet_is_byte_identical_across_thread_counts() {
    let fault = FaultConfig {
        seed: 0xc1a5,
        notify_drop_ppm: 30_000,
        notify_dup_ppm: 10_000,
        ipi_drop_ppm: 20_000,
        daemon_crash_ppm: 50_000,
        stale_read_ppm: 20_000,
        ..FaultConfig::default()
    };
    let serial = fleet_run(1, LbPolicy::LeastOutstanding, Some(fault));
    for threads in [2, 4] {
        assert_eq!(
            serial,
            fleet_run(threads, LbPolicy::LeastOutstanding, Some(fault)),
            "faulted fleet diverged at threads={threads}"
        );
    }
}
