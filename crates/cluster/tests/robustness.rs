//! Host-failure domains: crash/checkpoint/restore, LB health, and
//! fault-aware live migration, all under the exactly-once ledger.
//!
//! Every scenario ends with the same acceptance check: after the
//! stream drains, `completed + drops == sent` and nothing is in
//! flight — no request lost, none double-served — regardless of which
//! hosts crashed, which VMs moved, and which transfers the fault plan
//! ate along the way.

use cluster::{
    build_web_fleet, ClusterConfig, Health, LinkConfig, MigrationConfig, WebFleetConfig,
};
use sim_core::time::{SimDuration, SimTime};

fn small_fleet(hosts: usize, spares_per_host: usize) -> cluster::Cluster {
    build_web_fleet(
        WebFleetConfig {
            hosts,
            desktops_per_host: 1,
            spares_per_host,
            ..WebFleetConfig::default()
        },
        ClusterConfig {
            threads: 1,
            ..ClusterConfig::default()
        },
    )
}

/// Runs until `end`, then drains: every dispatched request must be
/// accounted exactly once (completed or dropped), with nothing parked
/// or pending.
fn drain_and_check(c: &mut cluster::Cluster, end: SimTime) {
    c.run_until(end).expect("runs");
    let mut deadline = end;
    for _ in 0..200 {
        if c.in_flight() == 0 {
            break;
        }
        deadline += SimDuration::from_ms(10);
        c.run_until(deadline).expect("drains");
    }
    assert_eq!(c.in_flight(), 0, "requests stuck in flight after drain");
    let completed: u64 = c.host_samples().iter().map(|h| h.completed).sum();
    let drops: u64 = c.host_samples().iter().map(|h| h.drops).sum();
    assert_eq!(
        completed + drops,
        c.sent(),
        "ledger imbalance: {completed} completed + {drops} dropped != {} sent",
        c.sent()
    );
}

#[test]
fn lb_requeues_in_flight_exactly_once_on_backend_failure() {
    let mut c = small_fleet(2, 0);
    let end = SimTime::from_ms(400);
    // Heavy enough that every backend holds several requests at any
    // instant, so the failure strikes a loaded backend.
    c.open_loop(12_000.0, SimTime::ZERO, end);
    // Let backend 0 accumulate in-flight work, then fail its VM while
    // the host lives on: its pending requests must be re-queued to the
    // survivors exactly once, and every reply the zombie still produces
    // must be fenced.
    c.run_until(SimTime::from_ms(120)).expect("warmup");
    c.fail_backend(0);
    assert_eq!(c.backend_health(0), Health::Down);
    assert!(
        c.robustness().requests_requeued > 0,
        "a loaded backend must have had requests to re-queue"
    );
    drain_and_check(&mut c, end);
}

#[test]
fn draining_backend_receives_nothing_new_and_rejoins() {
    let mut c = small_fleet(2, 0);
    let end = SimTime::from_ms(500);
    c.open_loop(2_000.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(100)).expect("warmup");
    c.drain_backend(0);
    let before: u64 = c.host_samples().iter().map(|h| h.completed).sum();
    // While draining, the backend finishes what it holds (no re-queue,
    // no loss) but the fleet keeps serving on the others.
    c.run_until(SimTime::from_ms(250)).expect("drain phase");
    let during: u64 = c.host_samples().iter().map(|h| h.completed).sum();
    assert!(during > before, "fleet stalled while one backend drained");
    assert_eq!(c.backend_health(0), Health::Draining);
    c.undrain_backend(0);
    assert_eq!(c.backend_health(0), Health::Healthy);
    drain_and_check(&mut c, end);
    // Draining never re-queues: the counter stays untouched.
    assert_eq!(c.robustness().requests_requeued, 0);
}

#[test]
fn live_migration_moves_backend_with_zero_loss() {
    let mut c = small_fleet(2, 1);
    let spares_before = c.n_spares();
    let end = SimTime::from_ms(500);
    c.open_loop(2_000.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(100)).expect("warmup");
    assert_eq!(c.backend_host(0), 0);
    c.start_migration(0, 1, MigrationConfig::default());
    c.run_until(SimTime::from_ms(200)).expect("migrating");
    assert_eq!(c.active_migrations(), 0, "migration should have settled");
    let r = c.robustness();
    assert_eq!(r.migrations_ok, 1, "aborted: {}", r.migrations_aborted);
    assert!(r.precopy_rounds >= 1);
    assert_eq!(r.downtime_us.count(), 1, "one blackout recorded");
    assert!(
        r.downtime_us.quantile(1.0) <= 2_000,
        "blackout {}us exceeded the 1ms budget by more than epoch rounding",
        r.downtime_us.quantile(1.0)
    );
    // The backend now lives on the destination; the vacated source
    // shell came back as a spare, conserving slot count.
    assert_eq!(c.backend_host(0), 1);
    assert_eq!(c.n_spares(), spares_before);
    assert_eq!(c.backend_health(0), Health::Healthy);
    // Exactly one live copy: the vacated source domain makes no
    // further progress.
    let src_dom = c.machine(0).domain_stats(vscale::DomId(0)).run_total;
    c.run_until(SimTime::from_ms(350)).expect("post-cutover");
    assert_eq!(
        c.machine(0).domain_stats(vscale::DomId(0)).run_total,
        src_dom,
        "the vacated source VM must be inert"
    );
    drain_and_check(&mut c, end);
}

#[test]
fn migration_aborts_after_capped_retries_when_it_cannot_converge() {
    let mut c = small_fleet(2, 1);
    let end = SimTime::from_ms(500);
    c.open_loop(2_000.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(100)).expect("warmup");
    // A budget smaller than the link latency can never be met, and the
    // fault plan eats every transfer on top: rounds burn to the cap,
    // then the job aborts with the source VM never having stopped.
    let cfg = MigrationConfig {
        link: LinkConfig {
            bandwidth_bps: 1_000_000_000,
            latency: SimDuration::from_us(500),
        },
        max_rounds: 3,
        downtime_budget: SimDuration::from_us(100),
        ..MigrationConfig::default()
    }
    .with_link_faults(11, 1_000_000, 0, SimDuration::ZERO);
    c.start_migration(0, 1, cfg);
    c.run_until(SimTime::from_ms(200)).expect("retrying");
    assert_eq!(c.active_migrations(), 0);
    let r = c.robustness();
    assert_eq!(r.migrations_ok, 0);
    assert_eq!(r.migrations_aborted, 1);
    assert_eq!(r.precopy_rounds, 3, "retries must stop at the cap");
    assert_eq!(r.downtime_us.count(), 0, "the VM never went dark");
    assert_eq!(c.backend_host(0), 0, "backend stays on the source");
    assert_eq!(c.backend_health(0), Health::Healthy);
    drain_and_check(&mut c, end);
}

#[test]
fn cutover_link_loss_rolls_back_to_the_source() {
    let mut c = small_fleet(2, 1);
    let end = SimTime::from_ms(500);
    c.open_loop(2_000.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(100)).expect("warmup");
    // Cold stop-and-copy whose one transfer is always lost: the VM goes
    // dark, the image never arrives, and the source shell absorbs it
    // back. Requests delivered during the blackout are held and
    // re-delivered to the rolled-back VM — none lost, none duplicated.
    let cfg = MigrationConfig {
        precopy: false,
        ..MigrationConfig::default()
    }
    .with_link_faults(5, 1_000_000, 0, SimDuration::ZERO);
    c.start_migration(0, 1, cfg);
    c.run_until(SimTime::from_ms(200)).expect("rolling back");
    assert_eq!(c.active_migrations(), 0);
    let r = c.robustness();
    assert_eq!(r.migrations_ok, 0);
    assert_eq!(r.migrations_aborted, 1);
    assert_eq!(r.downtime_us.count(), 1, "the rollback blackout is real");
    assert_eq!(c.backend_host(0), 0);
    assert_eq!(c.backend_health(0), Health::Healthy);
    let completed_at_rollback: u64 = c.host_samples().iter().map(|h| h.completed).sum();
    c.run_until(SimTime::from_ms(350)).expect("serving again");
    let completed_later: u64 = c.host_samples().iter().map(|h| h.completed).sum();
    assert!(
        completed_later > completed_at_rollback,
        "rolled-back VM must serve again"
    );
    drain_and_check(&mut c, end);
}

#[test]
fn destination_crash_mid_cutover_rolls_back() {
    let mut c = small_fleet(3, 1);
    let end = SimTime::from_ms(600);
    c.open_loop(2_000.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(100)).expect("warmup");
    // A starved migration link stretches the stop-and-copy window to
    // tens of milliseconds, so the destination host can die while the
    // image is in flight.
    let cfg = MigrationConfig {
        precopy: false,
        link: LinkConfig {
            bandwidth_bps: 10_000_000,
            latency: SimDuration::from_ms(1),
        },
        ..MigrationConfig::default()
    };
    c.start_migration(0, 1, cfg);
    c.run_until(SimTime::from_ms(102))
        .expect("entering blackout");
    assert!(
        c.backend_in_blackout(0),
        "the image should still be in flight on a 10 Mb/s link"
    );
    c.crash_host(1);
    // The crash settles the job immediately: rollback to the source.
    assert!(!c.backend_in_blackout(0));
    assert_eq!(c.active_migrations(), 0);
    let r = c.robustness();
    assert_eq!(r.migrations_aborted, 1);
    assert_eq!(r.hosts_down, 1);
    assert_eq!(c.backend_host(0), 0);
    assert_eq!(c.backend_health(0), Health::Healthy);
    // Host 1's own backends died with it; their requests were re-queued.
    assert_eq!(c.backend_health(2), Health::Down);
    drain_and_check(&mut c, end);
}

#[test]
fn host_crash_and_checkpoint_restore_is_exactly_once() {
    let mut c = small_fleet(3, 0);
    let end = SimTime::from_ms(600);
    c.open_loop(3_000.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(100)).expect("warmup");
    let image = c.checkpoint_host(2);
    c.run_until(SimTime::from_ms(220)).expect("pre-crash");
    c.crash_host(2);
    assert!(!c.host_up(2));
    c.run_until(SimTime::from_ms(300)).expect("outage");
    // The survivors carried the load during the outage.
    let during: u64 = c.host_samples().iter().map(|h| h.completed).sum();
    assert!(during > 0);
    c.restore_host(2, &image);
    assert!(c.host_up(2));
    let r = c.robustness();
    assert_eq!(r.hosts_down, 1);
    assert_eq!(r.hosts_restored, 1);
    assert!(r.requests_requeued > 0, "a loaded host held requests");
    assert_eq!(r.downtime_us.count(), 1);
    assert!(
        r.downtime_us.quantile(1.0) >= 40_000,
        "outage was ~80ms, recorded {}us (histogram buckets round down)",
        r.downtime_us.quantile(1.0)
    );
    // The restored host replays 120ms of already-accounted work; the
    // skip fence must discard exactly that cohort (checked by the
    // ledger balance below) and then serve new requests.
    drain_and_check(&mut c, end);
    let final_completed: u64 = c.host_samples().iter().map(|h| h.completed).sum();
    assert!(final_completed > during, "restored fleet must keep serving");
}

#[test]
#[should_panic(expected = "stale checkpoint")]
fn restoring_a_pre_migration_checkpoint_is_refused() {
    let mut c = small_fleet(2, 1);
    c.open_loop(2_000.0, SimTime::ZERO, SimTime::from_ms(400));
    c.run_until(SimTime::from_ms(100)).expect("warmup");
    // Checkpoint the source, then migrate its VM away. Restoring the
    // old image would resurrect the moved VM — two live copies — so the
    // topology fence must refuse it.
    let image = c.checkpoint_host(0);
    c.start_migration(0, 1, MigrationConfig::default());
    c.run_until(SimTime::from_ms(200)).expect("migrating");
    assert_eq!(c.active_migrations(), 0);
    assert_eq!(c.robustness().migrations_ok, 1);
    c.crash_host(0);
    c.restore_host(0, &image);
}

/// One scripted failure storm (migration, crash, restore) fingerprinted
/// end-to-end: the trajectory must be byte-identical at any worker
/// thread count, because all failure machinery runs serially at epoch
/// boundaries.
fn failure_storm(threads: usize) -> String {
    let mut c = build_web_fleet(
        WebFleetConfig {
            hosts: 3,
            desktops_per_host: 1,
            spares_per_host: 1,
            ..WebFleetConfig::default()
        },
        ClusterConfig {
            threads,
            ..ClusterConfig::default()
        },
    );
    let end = SimTime::from_ms(500);
    c.open_loop(2_500.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(80)).expect("warmup");
    c.start_migration(0, 2, MigrationConfig::default());
    c.run_until(SimTime::from_ms(180)).expect("migrated");
    assert_eq!(c.active_migrations(), 0);
    let image = c.checkpoint_host(0);
    c.run_until(SimTime::from_ms(240)).expect("pre-crash");
    c.crash_host(0);
    c.run_until(SimTime::from_ms(320)).expect("outage");
    c.restore_host(0, &image);
    drain_and_check(&mut c, end);
    let mut out = c.fleet_point("storm", 2_500).to_json();
    out.push('\n');
    out.push_str(&c.robustness().to_json());
    for host in 0..c.n_hosts() {
        let m = c.machine(host);
        for dom in 0..2 {
            let st = m.domain_stats(vscale::DomId(dom));
            out.push_str(&format!(
                "\nhost{host} dom{dom} {:?} {:?} {}",
                st.run_total, st.wait_total, st.reconfigs
            ));
        }
    }
    out
}

#[test]
fn failure_storm_is_thread_count_invariant() {
    let serial = failure_storm(1);
    for threads in [2, 4] {
        assert_eq!(
            serial,
            failure_storm(threads),
            "failure machinery diverged at threads={threads}"
        );
    }
}
