//! The cluster-side plumbing the fleet autoscaler stands on: composable
//! trace streams, the wheel-scheduled SLO sampler, the in-service host
//! lifecycle, sparse host stepping, and the least-outstanding
//! evacuation target picker.

use cluster::{build_web_fleet, ClusterConfig, LbPolicy, MigrationConfig, WebFleetConfig};
use sim_core::time::{SimDuration, SimTime};
use workloads::traces::RateTrace;

fn fleet(hosts: usize, spares_per_host: usize, threads: usize) -> cluster::Cluster {
    build_web_fleet(
        WebFleetConfig {
            hosts,
            desktops_per_host: 1,
            spares_per_host,
            ..WebFleetConfig::default()
        },
        ClusterConfig {
            threads,
            lb: LbPolicy::LeastOutstanding,
            ..ClusterConfig::default()
        },
    )
}

fn drain_and_check(c: &mut cluster::Cluster, end: SimTime) {
    c.run_until(end).expect("runs");
    let mut deadline = end;
    for _ in 0..200 {
        if c.in_flight() == 0 {
            break;
        }
        deadline += SimDuration::from_ms(10);
        c.run_until(deadline).expect("drains");
    }
    assert_eq!(c.in_flight(), 0, "requests stuck in flight after drain");
    let completed: u64 = c.host_samples().iter().map(|h| h.completed).sum();
    let drops: u64 = c.host_samples().iter().map(|h| h.drops).sum();
    assert_eq!(completed + drops, c.sent(), "ledger imbalance");
}

#[test]
fn tenant_streams_compose_with_the_constant_stream() {
    let mut c = fleet(2, 0, 1);
    let end = SimTime::from_ms(300);
    c.set_window(SimTime::ZERO, end);
    // Three tenants: the legacy constant stream plus two traced ones.
    c.open_loop(1_000.0, SimTime::ZERO, end);
    let diurnal = c.add_stream(
        RateTrace::Diurnal {
            base_rps: 200.0,
            peak_rps: 2_000.0,
            period: SimDuration::from_ms(200),
        },
        SimTime::ZERO,
        end,
    );
    let flash = c.add_stream(
        RateTrace::FlashCrowd {
            base_rps: 200.0,
            spike_rps: 4_000.0,
            at: SimTime::from_ms(100),
            ramp: SimDuration::from_ms(20),
            hold: SimDuration::from_ms(50),
            decay: SimDuration::from_ms(30),
        },
        SimTime::ZERO,
        end,
    );
    assert_eq!((diurnal, flash), (1, 2), "streams index in order");
    drain_and_check(&mut c, end);
    // ~300 constant + ~200 diurnal + ~150 flash-quiet + spike ≈ 800+.
    assert!(c.sent() > 600, "all tenants contribute: {}", c.sent());
}

#[test]
#[should_panic(expected = "one constant stream per run")]
fn second_constant_stream_is_rejected() {
    let mut c = fleet(1, 0, 1);
    let end = SimTime::from_ms(10);
    c.open_loop(100.0, SimTime::ZERO, end);
    c.open_loop(100.0, SimTime::ZERO, end);
}

#[test]
fn slo_sampler_drains_windows_on_the_wheel() {
    let mut c = fleet(2, 0, 1);
    let end = SimTime::from_ms(200);
    c.open_loop(4_000.0, SimTime::ZERO, end);
    c.install_slo_sampler(SimDuration::from_ms(20));
    c.run_until(end).expect("runs");
    let mut samples = Vec::new();
    while let Some(s) = c.pop_slo_sample() {
        samples.push(s);
    }
    assert_eq!(samples.len(), 9, "one window per period, popped before t");
    let mut prev = SimTime::ZERO;
    let mut completed = 0;
    for (t, w) in &samples {
        assert_eq!(t.as_ms() % 20, 0, "samples land on the period grid: {t:?}");
        assert!(*t > prev, "sample instants advance");
        prev = *t;
        completed += w.completed;
    }
    // Windows see completions online (no measurement window was set).
    assert!(completed > 500, "windows carry completions: {completed}");
    assert!(
        samples.iter().skip(2).any(|(_, w)| w.p99_us() > 400),
        "a loaded window's p99 includes the network legs"
    );
}

#[test]
fn sparse_stepping_skips_idle_hosts_and_counts_them() {
    // No request load at all: hosts only run their VMs' daemons and
    // desktop think timers, so most 200 µs epochs have nothing due and
    // the lockstep loop must skip far more host-steps than it takes.
    let mut c = fleet(4, 0, 1);
    c.run_until(SimTime::from_ms(100)).expect("idles");
    let skipped = c.steps_skipped();
    let total = 4 * 500u64; // hosts × epochs
    assert!(
        skipped > total / 2,
        "idle fleet must skip most steps: {skipped} of {total}"
    );
    assert!(skipped < total, "someone must still step");
    // The counter is a pure function of host states at epoch
    // boundaries, so it is thread-count invariant.
    let mut c2 = fleet(4, 0, 2);
    c2.run_until(SimTime::from_ms(100)).expect("idles");
    assert_eq!(c2.steps_skipped(), skipped);
    // And it surfaces in the fleet point JSON.
    let json = c.fleet_point("vscale", 0).to_json();
    assert!(
        json.contains(&format!("\"steps_skipped\":{skipped}")),
        "{json}"
    );
}

#[test]
fn evacuation_lands_on_the_least_outstanding_host() {
    // Hosts 0..3, one spare each. Drain host 2's backends so its
    // in-flight count runs dry while hosts 1 and 3 keep absorbing the
    // stream; evacuating host 0 must then land its first VM on host 2 —
    // the least-outstanding candidate — not on host 1 (the
    // first-spare-in-registration-order pick of the old policy).
    let mut c = fleet(4, 1, 1);
    let end = SimTime::from_ms(500);
    c.open_loop(10_000.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(100)).expect("warmup");
    c.drain_backend(4);
    c.drain_backend(5);
    c.run_until(SimTime::from_ms(150)).expect("host 2 drains");
    let host_out = |c: &cluster::Cluster, h: usize| -> u64 {
        (0..c.n_backends())
            .filter(|&b| c.backend_host(b) == h)
            .map(|b| c.backend_outstanding(b))
            .sum()
    };
    assert_eq!(host_out(&c, 2), 0, "drained host runs dry");
    assert!(
        host_out(&c, 1) > 0 && host_out(&c, 3) > 0,
        "live hosts hold in-flight work: {} {}",
        host_out(&c, 1),
        host_out(&c, 3),
    );
    let moved = c.evacuate_host(0, MigrationConfig::default());
    assert_eq!(moved, 2, "both VMs find landing slots");
    c.run_until(SimTime::from_ms(250)).expect("migrating");
    assert_eq!(c.active_migrations(), 0, "evacuation settled");
    assert_eq!(
        c.backend_host(0),
        2,
        "first evacuee lands on the least-outstanding host"
    );
    assert_ne!(c.backend_host(1), 0, "second evacuee left the source");
    c.undrain_backend(4);
    c.undrain_backend(5);
    drain_and_check(&mut c, end);
}

#[test]
fn standby_hosts_are_parked_until_activated() {
    // One serving host plus one standby built by the testbed: the
    // standby carries two spare twins but starts out of service, so
    // its slots must not attract an evacuation until it is activated.
    let mut c = build_web_fleet(
        WebFleetConfig {
            hosts: 1,
            desktops_per_host: 1,
            standby_hosts: 1,
            ..WebFleetConfig::default()
        },
        ClusterConfig {
            threads: 1,
            lb: LbPolicy::LeastOutstanding,
            ..ClusterConfig::default()
        },
    );
    assert_eq!(c.n_hosts(), 2);
    assert_eq!(c.n_backends(), 2, "standby registers no backends");
    assert_eq!(c.spares_on(1), 2, "standby carries spare twins");
    assert!(!c.host_in_service(1));
    assert_eq!(c.hosts_in_service(), 1);
    let end = SimTime::from_ms(400);
    c.open_loop(2_000.0, SimTime::ZERO, end);
    c.run_until(SimTime::from_ms(50)).expect("warmup");
    assert_eq!(
        c.evacuate_host(0, MigrationConfig::default()),
        0,
        "parked standby must not be a landing slot"
    );
    // Activate — the same evacuation now proceeds, and once the source
    // is empty it can be retired in turn (the scale-in path).
    c.set_in_service(1, true);
    assert_eq!(c.hosts_in_service(), 2);
    assert_eq!(c.evacuate_host(0, MigrationConfig::default()), 2);
    c.run_until(SimTime::from_ms(200)).expect("migrating");
    assert_eq!(c.active_migrations(), 0);
    assert_eq!(c.backend_host(0), 1);
    assert_eq!(c.backend_host(1), 1);
    c.set_in_service(0, false);
    assert_eq!(c.hosts_in_service(), 1);
    drain_and_check(&mut c, end);
}

#[test]
#[should_panic(expected = "evacuate before retiring")]
fn retiring_a_serving_host_is_refused() {
    let mut c = fleet(2, 0, 1);
    c.open_loop(1_000.0, SimTime::ZERO, SimTime::from_ms(100));
    c.run_until(SimTime::from_ms(20)).expect("warmup");
    c.set_in_service(0, false);
}
