//! Property: fleet-merged histogram quantiles agree with a single
//! whole-population histogram.
//!
//! `Histogram::merge` sums bucket counts exactly, so splitting a request
//! population across hosts and merging must reproduce the
//! whole-population quantiles not just within bucket resolution (the
//! ISSUE's bar) but *exactly* — any disagreement means per-host
//! aggregation loses samples or shifts buckets.

use metrics::fleet::{FleetPoint, HostSample};
use sim_core::stats::Histogram;
use testkit::{prop_assert, prop_assert_eq};

#[test]
fn fleet_merge_matches_whole_population_quantiles() {
    let latencies = testkit::vec_of(testkit::u64_in(0..50_000_000), 1..400);
    let input = testkit::tuple2(latencies, testkit::usize_in(1..9));
    testkit::run_prop(
        "fleet_merge_quantiles",
        testkit::Config::with_cases(64),
        &input,
        |(samples, n_hosts)| {
            // Deal the population round-robin across hosts.
            let mut hosts: Vec<HostSample> = (0..*n_hosts)
                .map(|host| HostSample {
                    host,
                    latency_us: Histogram::new(),
                    completed: 0,
                    drops: 0,
                })
                .collect();
            let mut whole = Histogram::new();
            for (i, &s) in samples.iter().enumerate() {
                hosts[i % n_hosts].latency_us.record(s);
                hosts[i % n_hosts].completed += 1;
                whole.record(s);
            }
            let point = FleetPoint::from_hosts("prop", 1, samples.len() as u64, hosts);
            prop_assert_eq!(point.completed, samples.len() as u64);
            for q in [0.5, 0.9, 0.99, 0.999] {
                let merged = point.latency_us.quantile(q);
                let direct = whole.quantile(q);
                prop_assert!(
                    merged == direct,
                    "q={q}: merged {merged} != whole-population {direct}"
                );
            }
            prop_assert_eq!(point.p999_us(), whole.quantile(0.999));
            Ok(())
        },
    );
}
