//! Parallel kernel-build workload (the Table 2 exercise).
//!
//! `make -jN` inside the guest: compiler processes run in parallel,
//! coordinated through a jobserver pipe (a semaphore) and touching memory-
//! management kernel locks. The paper uses this workload to demonstrate
//! that a frozen vCPU stays quiescent — zero timer interrupts (dynticks)
//! and zero reschedule IPIs — while the others keep the build running.

use guest_kernel::thread::{KLockId, ProgramCtx, SemId, ThreadAction, ThreadKind, ThreadProgram};
use guest_kernel::ThreadId;
use sim_core::rng::SimRng;
use sim_core::time::SimDuration;
use vscale::{DomId, Machine};
use xen_sched::HypervisorSched;

/// Kernel-build parameters.
#[derive(Clone, Copy, Debug)]
pub struct KbuildConfig {
    /// Parallel jobs (`make -j`).
    pub jobs: usize,
    /// Jobserver tokens — fewer tokens than jobs keeps some jobs blocked
    /// on the pipe, producing the steady trickle of futex wakes (and
    /// reschedule IPIs) a real `make -j` shows.
    pub jobserver_tokens: u64,
    /// Compilation units per job.
    pub units_per_job: u32,
    /// Mean CPU per compilation unit.
    pub unit_cpu: SimDuration,
}

impl Default for KbuildConfig {
    fn default() -> Self {
        KbuildConfig {
            jobs: 8,
            jobserver_tokens: 4,
            units_per_job: 400,
            unit_cpu: SimDuration::from_ms(30),
        }
    }
}

struct CompilerJob {
    cfg: KbuildConfig,
    jobserver: SemId,
    mm_lock: KLockId,
    rng: SimRng,
    units_left: u32,
    phase: Phase,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    TakeToken,
    Compile,
    MmWork,
    ReleaseToken,
    Done,
}

impl ThreadProgram for CompilerJob {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        loop {
            match self.phase {
                Phase::TakeToken => {
                    if self.units_left == 0 {
                        self.phase = Phase::Done;
                        continue;
                    }
                    self.phase = Phase::Compile;
                    return ThreadAction::SemWait(self.jobserver);
                }
                Phase::Compile => {
                    self.phase = Phase::MmWork;
                    let jitter = (1.0 + self.rng.normal(0.0, 0.5)).max(0.1);
                    return ThreadAction::Compute(self.cfg.unit_cpu.mul_f64(jitter));
                }
                Phase::MmWork => {
                    self.phase = Phase::ReleaseToken;
                    // fork/exec + page-table churn per compilation unit.
                    return ThreadAction::KernelOp {
                        lock: self.mm_lock,
                        hold: SimDuration::from_us(3 + self.rng.below(4)),
                    };
                }
                Phase::ReleaseToken => {
                    self.units_left -= 1;
                    self.phase = Phase::TakeToken;
                    return ThreadAction::SemPost(self.jobserver);
                }
                Phase::Done => return ThreadAction::Exit,
            }
        }
    }

    fn label(&self) -> &str {
        "cc1"
    }
}

/// Handle to an installed kernel build.
#[derive(Clone, Debug)]
pub struct KbuildRun {
    /// Compiler job threads.
    pub threads: Vec<ThreadId>,
}

/// Installs and starts a kernel build in `dom`.
pub fn install<S: HypervisorSched>(m: &mut Machine<S>, dom: DomId, cfg: KbuildConfig) -> KbuildRun {
    let mut seed_rng = m.rng.fork(0x6b62_6c64);
    let guest = m.guest_mut(dom);
    let jobserver = guest.sync.new_semaphore(cfg.jobserver_tokens);
    let mm_lock = guest.klocks.alloc();
    let mut threads = Vec::with_capacity(cfg.jobs);
    for i in 0..cfg.jobs {
        threads.push(guest.spawn(
            ThreadKind::User,
            Box::new(CompilerJob {
                cfg,
                jobserver,
                mm_lock,
                rng: seed_rng.fork(i as u64),
                units_left: cfg.units_per_job,
                phase: Phase::TakeToken,
            }),
        ));
    }
    for &t in &threads {
        m.start_thread(dom, t);
    }
    KbuildRun { threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use vscale::config::{DomainSpec, MachineConfig};

    #[test]
    fn build_makes_progress_on_all_vcpus() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 4,
            ..MachineConfig::default()
        });
        let d = m.add_domain(DomainSpec::fixed(4));
        install(
            &mut m,
            d,
            KbuildConfig {
                jobs: 8,
                units_per_job: 10,
                unit_cpu: SimDuration::from_ms(2),
                ..KbuildConfig::default()
            },
        );
        m.run_until_exited(d, SimTime::from_secs(5))
            .expect("build ends");
        // All four vCPUs contributed (load balancing spread the jobs).
        let st = m.domain_stats(d);
        for (i, ticks) in st.timer_ints.iter().enumerate() {
            assert!(*ticks > 0, "vcpu{i} never ran");
        }
    }
}
