//! Trace-driven open-loop request rates.
//!
//! The cluster's original load model was a single constant-rate Poisson
//! stream; an elastic fleet needs load that *moves* — the diurnal swell
//! a datacenter follows, the sub-second burstiness an MMPP models, and
//! the flash crowd that motivates scale-out in the first place. A
//! [`RateTrace`] describes the instantaneous offered rate as a function
//! of simulated time; a [`TraceSampler`] turns it into a concrete
//! arrival sequence on a private [`SimRng`], so several tenants can run
//! their own traces side by side with fully independent, seeded
//! randomness (composability = one sampler per tenant).
//!
//! Sampling is exact, not discretized:
//!
//! * `Constant` draws plain exponential gaps — byte-compatible with the
//!   legacy constant stream when handed the same RNG.
//! * Deterministic time-varying traces (`Diurnal`, `FlashCrowd`) use
//!   Lewis–Shedler thinning at the trace's peak rate: candidate
//!   arrivals are drawn at the peak and accepted with probability
//!   `rate(t)/peak`, which yields the exact inhomogeneous Poisson
//!   process without stepping time.
//! * `Mmpp` runs its two-state modulating chain by competing
//!   exponentials: a candidate gap at the current state's rate is kept
//!   only if it lands before the next state switch; otherwise time
//!   advances to the switch and the draw restarts at the new rate —
//!   valid precisely because the exponential is memoryless.
//!
//! Every draw comes from the sampler's own RNG in a deterministic
//! order, so arrival sequences are a pure function of (trace, seed) —
//! independent of thread count, other tenants, and wall clock.

use sim_core::rng::SimRng;
use sim_core::time::{SimDuration, SimTime};

/// The offered request rate over time, requests/second.
#[derive(Clone, Copy, Debug)]
pub enum RateTrace {
    /// The legacy fixed-rate Poisson stream.
    Constant {
        /// Offered rate.
        rps: f64,
    },
    /// A smooth day/night swell: sinusoid from `base_rps` (at t = 0) up
    /// to `peak_rps` half a period later and back.
    Diurnal {
        /// Trough rate, offered at t = 0 and every full period.
        base_rps: f64,
        /// Crest rate, offered half a period in.
        peak_rps: f64,
        /// Full swell period.
        period: SimDuration,
    },
    /// A flash crowd: `base_rps` until `at`, a linear ramp to
    /// `spike_rps` over `ramp`, held for `hold`, then a linear decay
    /// back to `base_rps` over `decay`.
    FlashCrowd {
        /// Quiescent rate before and after the crowd.
        base_rps: f64,
        /// Peak rate at the top of the ramp.
        spike_rps: f64,
        /// When the ramp starts.
        at: SimTime,
        /// Ramp-up duration.
        ramp: SimDuration,
        /// Time spent at the spike.
        hold: SimDuration,
        /// Decay duration back to base.
        decay: SimDuration,
    },
    /// A two-state Markov-modulated Poisson process: the rate jumps
    /// between `calm_rps` and `burst_rps` with exponentially
    /// distributed dwell times — sub-second burstiness rather than a
    /// deterministic shape. The chain starts calm at t = 0.
    Mmpp {
        /// Rate in the calm state.
        calm_rps: f64,
        /// Rate in the burst state.
        burst_rps: f64,
        /// Mean dwell in the calm state.
        calm_dwell: SimDuration,
        /// Mean dwell in the burst state.
        burst_dwell: SimDuration,
    },
}

impl RateTrace {
    /// The trace's maximum instantaneous rate (the thinning envelope).
    pub fn peak_rps(&self) -> f64 {
        match *self {
            RateTrace::Constant { rps } => rps,
            RateTrace::Diurnal {
                base_rps, peak_rps, ..
            } => base_rps.max(peak_rps),
            RateTrace::FlashCrowd {
                base_rps,
                spike_rps,
                ..
            } => base_rps.max(spike_rps),
            RateTrace::Mmpp {
                calm_rps,
                burst_rps,
                ..
            } => calm_rps.max(burst_rps),
        }
    }

    /// The deterministic instantaneous rate at `t`. For `Mmpp` — whose
    /// rate depends on the modulating chain's realized state, which
    /// lives in the sampler — this reports the peak envelope.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match *self {
            RateTrace::Constant { rps } => rps,
            RateTrace::Diurnal {
                base_rps,
                peak_rps,
                period,
            } => {
                let phase =
                    (t.as_ns() % period.as_ns().max(1)) as f64 / period.as_ns().max(1) as f64;
                let swell = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                base_rps + (peak_rps - base_rps) * swell
            }
            RateTrace::FlashCrowd {
                base_rps,
                spike_rps,
                at,
                ramp,
                hold,
                decay,
            } => {
                if t < at {
                    return base_rps;
                }
                let since = t.since(at);
                if since < ramp {
                    let f = since.as_ns() as f64 / ramp.as_ns().max(1) as f64;
                    base_rps + (spike_rps - base_rps) * f
                } else if since < ramp + hold {
                    spike_rps
                } else if since < ramp + hold + decay {
                    let f = since.saturating_sub(ramp + hold).as_ns() as f64
                        / decay.as_ns().max(1) as f64;
                    spike_rps + (base_rps - spike_rps) * f
                } else {
                    base_rps
                }
            }
            RateTrace::Mmpp { .. } => self.peak_rps(),
        }
    }

    fn validate(&self) {
        match *self {
            RateTrace::Constant { rps } => assert!(rps > 0.0, "rate must be positive"),
            RateTrace::Diurnal {
                base_rps,
                peak_rps,
                period,
            } => {
                assert!(base_rps > 0.0 && peak_rps > 0.0, "rates must be positive");
                assert!(!period.is_zero(), "period must be positive");
            }
            RateTrace::FlashCrowd {
                base_rps,
                spike_rps,
                ..
            } => {
                assert!(base_rps > 0.0 && spike_rps > 0.0, "rates must be positive");
            }
            RateTrace::Mmpp {
                calm_rps,
                burst_rps,
                calm_dwell,
                burst_dwell,
            } => {
                assert!(calm_rps > 0.0 && burst_rps > 0.0, "rates must be positive");
                assert!(
                    !calm_dwell.is_zero() && !burst_dwell.is_zero(),
                    "dwell means must be positive"
                );
            }
        }
    }
}

/// Turns a [`RateTrace`] into a concrete arrival sequence on a private
/// RNG. One sampler per tenant stream.
#[derive(Clone, Debug)]
pub struct TraceSampler {
    trace: RateTrace,
    rng: SimRng,
    /// `Mmpp` chain state: currently bursting?
    burst: bool,
    /// `Mmpp`: when the chain next switches state.
    next_switch: SimTime,
}

impl TraceSampler {
    /// A sampler with its own RNG derived from `seed`.
    pub fn new(trace: RateTrace, seed: u64) -> Self {
        Self::from_rng(trace, SimRng::new(seed))
    }

    /// A sampler over an existing RNG — the constant-rate compatibility
    /// path: handed the stream RNG the legacy cluster loop used, a
    /// `Constant` sampler reproduces its arrival sequence byte for byte.
    pub fn from_rng(trace: RateTrace, mut rng: SimRng) -> Self {
        trace.validate();
        let next_switch = match trace {
            RateTrace::Mmpp { calm_dwell, .. } => {
                SimTime::ZERO + exp_gap(&mut rng, calm_dwell.as_us_f64())
            }
            _ => SimTime::MAX,
        };
        TraceSampler {
            trace,
            rng,
            burst: false,
            next_switch,
        }
    }

    /// The trace this sampler draws from.
    pub fn trace(&self) -> &RateTrace {
        &self.trace
    }

    /// The next arrival strictly after `after`.
    pub fn next_arrival(&mut self, after: SimTime) -> SimTime {
        match self.trace {
            RateTrace::Constant { rps } => after + exp_gap(&mut self.rng, 1e6 / rps),
            RateTrace::Diurnal { .. } | RateTrace::FlashCrowd { .. } => {
                // Lewis–Shedler thinning at the peak-rate envelope.
                let peak = self.trace.peak_rps();
                let mut t = after;
                loop {
                    t += exp_gap(&mut self.rng, 1e6 / peak);
                    let accept = self.trace.rate_at(t) / peak;
                    if self.rng.next_f64() < accept {
                        return t;
                    }
                }
            }
            RateTrace::Mmpp {
                calm_rps,
                burst_rps,
                calm_dwell,
                burst_dwell,
            } => {
                let mut from = after;
                loop {
                    let rate = if self.burst { burst_rps } else { calm_rps };
                    let t = from + exp_gap(&mut self.rng, 1e6 / rate);
                    if t < self.next_switch {
                        return t;
                    }
                    // The candidate fell past the modulation switch:
                    // advance to the switch and redraw at the new rate —
                    // exact thanks to exponential memorylessness.
                    from = self.next_switch;
                    self.burst = !self.burst;
                    let dwell = if self.burst { burst_dwell } else { calm_dwell };
                    self.next_switch += exp_gap(&mut self.rng, dwell.as_us_f64());
                }
            }
        }
    }
}

/// One exponential gap with the given mean (µs), floored at 1 ns so
/// time always advances.
fn exp_gap(rng: &mut SimRng, mean_us: f64) -> SimDuration {
    SimDuration::from_us_f64(rng.exponential(mean_us)).max(SimDuration::from_ns(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals_until(sampler: &mut TraceSampler, end: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t = sampler.next_arrival(t);
            if t >= end {
                return out;
            }
            out.push(t);
        }
    }

    fn count_in(arrivals: &[SimTime], lo: SimTime, hi: SimTime) -> usize {
        arrivals.iter().filter(|&&t| t >= lo && t < hi).count()
    }

    #[test]
    fn constant_matches_the_legacy_draw_sequence() {
        let mut rng = SimRng::new(42).fork(0x434c_5553);
        let mut sampler = TraceSampler::from_rng(RateTrace::Constant { rps: 5_000.0 }, rng.clone());
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            // The legacy loop's draw: one exponential per arrival,
            // floored at 1 ns.
            let us = rng.exponential(1e6 / 5_000.0);
            let legacy = t + SimDuration::from_us_f64(us).max(SimDuration::from_ns(1));
            t = sampler.next_arrival(t);
            assert_eq!(t, legacy);
        }
    }

    #[test]
    fn samplers_are_deterministic_and_strictly_increasing() {
        let traces = [
            RateTrace::Constant { rps: 2_000.0 },
            RateTrace::Diurnal {
                base_rps: 500.0,
                peak_rps: 4_000.0,
                period: SimDuration::from_ms(200),
            },
            RateTrace::FlashCrowd {
                base_rps: 500.0,
                spike_rps: 8_000.0,
                at: SimTime::from_ms(100),
                ramp: SimDuration::from_ms(20),
                hold: SimDuration::from_ms(100),
                decay: SimDuration::from_ms(50),
            },
            RateTrace::Mmpp {
                calm_rps: 500.0,
                burst_rps: 6_000.0,
                calm_dwell: SimDuration::from_ms(40),
                burst_dwell: SimDuration::from_ms(10),
            },
        ];
        for trace in traces {
            let end = SimTime::from_ms(400);
            let a = arrivals_until(&mut TraceSampler::new(trace, 7), end);
            let b = arrivals_until(&mut TraceSampler::new(trace, 7), end);
            assert_eq!(a, b, "same seed, same sequence: {trace:?}");
            assert!(
                a.windows(2).all(|w| w[0] < w[1]),
                "time advances: {trace:?}"
            );
            let c = arrivals_until(&mut TraceSampler::new(trace, 8), end);
            assert_ne!(a, c, "different seed, different sequence: {trace:?}");
        }
    }

    #[test]
    fn diurnal_swells_between_base_and_peak() {
        let period = SimDuration::from_secs(1);
        let trace = RateTrace::Diurnal {
            base_rps: 1_000.0,
            peak_rps: 9_000.0,
            period,
        };
        assert!((trace.rate_at(SimTime::ZERO) - 1_000.0).abs() < 1.0);
        assert!((trace.rate_at(SimTime::from_ms(500)) - 9_000.0).abs() < 1.0);
        assert!((trace.rate_at(SimTime::from_secs(1)) - 1_000.0).abs() < 1.0);
        // Arrivals concentrate around the crest: the middle half-period
        // must see well over half the arrivals.
        let arrivals = arrivals_until(&mut TraceSampler::new(trace, 3), SimTime::from_secs(1));
        let crest = count_in(&arrivals, SimTime::from_ms(250), SimTime::from_ms(750));
        assert!(
            crest * 3 > arrivals.len() * 2,
            "crest {crest} of {}",
            arrivals.len()
        );
        // And the total matches the mean rate (5k rps for 1 s) loosely.
        assert!(
            (3_500..=6_500).contains(&arrivals.len()),
            "total {}",
            arrivals.len()
        );
    }

    #[test]
    fn flash_crowd_spikes_when_scheduled() {
        let trace = RateTrace::FlashCrowd {
            base_rps: 1_000.0,
            spike_rps: 10_000.0,
            at: SimTime::from_ms(200),
            ramp: SimDuration::from_ms(50),
            hold: SimDuration::from_ms(200),
            decay: SimDuration::from_ms(50),
        };
        assert_eq!(trace.rate_at(SimTime::from_ms(100)), 1_000.0);
        assert_eq!(trace.rate_at(SimTime::from_ms(300)), 10_000.0);
        assert_eq!(trace.rate_at(SimTime::from_ms(600)), 1_000.0);
        let arrivals = arrivals_until(&mut TraceSampler::new(trace, 11), SimTime::from_ms(700));
        let quiet = count_in(&arrivals, SimTime::ZERO, SimTime::from_ms(100));
        let spike = count_in(&arrivals, SimTime::from_ms(250), SimTime::from_ms(350));
        assert!(
            spike as f64 > 5.0 * quiet as f64,
            "spike {spike} vs quiet {quiet}"
        );
    }

    #[test]
    fn mmpp_alternates_between_calm_and_burst_densities() {
        let trace = RateTrace::Mmpp {
            calm_rps: 300.0,
            burst_rps: 12_000.0,
            calm_dwell: SimDuration::from_ms(50),
            burst_dwell: SimDuration::from_ms(20),
        };
        let end = SimTime::from_secs(2);
        let arrivals = arrivals_until(&mut TraceSampler::new(trace, 5), end);
        // Mean rate over calm/burst dwell mix ≈ (300*50 + 12000*20)/70
        // ≈ 3.6k rps; mostly sanity-check the mix is neither pure state.
        let n = arrivals.len();
        assert!(n > 2 * 600, "more than pure calm: {n}");
        assert!(n < 2 * 12_000, "less than pure burst: {n}");
        // Burstiness: some 10 ms slices far exceed the calm rate, some
        // sit at it.
        let mut dense = 0;
        let mut sparse = 0;
        for slice in 0..200 {
            let lo = SimTime::from_ms(slice * 10);
            let hi = SimTime::from_ms(slice * 10 + 10);
            let c = count_in(&arrivals, lo, hi);
            if c > 60 {
                dense += 1; // ≥ 6k rps locally
            }
            if c < 15 {
                sparse += 1; // ≤ 1.5k rps locally
            }
        }
        assert!(dense > 5, "burst slices: {dense}");
        assert!(sparse > 5, "calm slices: {sparse}");
    }
}
