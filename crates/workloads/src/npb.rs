//! NAS Parallel Benchmarks (NPB-OMP 3.3) behavioural models.
//!
//! Every NPB kernel is an iterative, barrier-synchronized OpenMP program:
//! each worker computes its slice of an iteration and then waits at an
//! implicit barrier for the stragglers. The performance signature that
//! matters under VM scheduling delays is captured by four knobs per
//! application:
//!
//! - **granularity** — work per thread between consecutive barriers;
//! - **imbalance** — how unevenly that work spreads across threads (the
//!   longer the wait at the barrier, the more spin/futex traffic);
//! - **sync style** — OpenMP-policy barriers, or lu's *ad-hoc* user-space
//!   busy-waiting (its own pipelined wavefront synchronization, outside
//!   OpenMP's control — the reason vScale helps lu regardless of
//!   `GOMP_SPINCOUNT`);
//! - **kernel-lock intensity** — how often an iteration touches contended
//!   kernel locks (mm operations), which is what pv-spinlock mitigates.
//!
//! The constants are calibrated so that relative synchronization
//! intensities match the paper's Figure 10 IPI profile (mg/sp/ua
//! barrier-heavy, ep/ft/is nearly sync-free).

use guest_kernel::thread::{
    BarrierId, KLockId, ProgramCtx, ThreadAction, ThreadKind, ThreadProgram,
};
use guest_kernel::ThreadId;
use sim_core::rng::SimRng;
use sim_core::time::SimDuration;
use vscale::{DomId, Machine};
use xen_sched::HypervisorSched;

use crate::spin::SpinPolicy;

/// How an application's threads synchronize each iteration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncStyle {
    /// Implicit OpenMP barrier: spin budget follows the active policy.
    OmpBarrier,
    /// Application-private busy-wait synchronization (lu): always spins,
    /// whatever `GOMP_SPINCOUNT` says.
    AdHocSpin,
}

/// Static description of one NPB application.
#[derive(Clone, Copy, Debug)]
pub struct NpbApp {
    /// Benchmark name (paper's lower-case convention).
    pub name: &'static str,
    /// Iterations (barrier intervals) per run.
    pub iterations: u32,
    /// Mean computation per thread per iteration.
    pub work_per_iter: SimDuration,
    /// Log-normal-ish imbalance of that work across threads (sigma as a
    /// fraction of the mean).
    pub imbalance: f64,
    /// Synchronization style.
    pub sync: SyncStyle,
    /// Probability that an iteration performs a kernel critical section
    /// (mm lock) per thread.
    pub kernel_op_rate: f64,
}

/// The ten NPB-OMP applications, calibrated for a ~2 s dedicated run with
/// four threads.
pub const NPB_APPS: [NpbApp; 10] = [
    NpbApp {
        name: "bt",
        iterations: 400,
        work_per_iter: SimDuration::from_us(5_000),
        imbalance: 0.18,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.30,
    },
    NpbApp {
        name: "cg",
        iterations: 1_200,
        work_per_iter: SimDuration::from_us(1_600),
        imbalance: 0.25,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.25,
    },
    NpbApp {
        name: "dc",
        iterations: 150,
        work_per_iter: SimDuration::from_us(13_000),
        imbalance: 0.10,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.40,
    },
    NpbApp {
        name: "ep",
        iterations: 16,
        work_per_iter: SimDuration::from_us(125_000),
        imbalance: 0.02,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.02,
    },
    NpbApp {
        name: "ft",
        iterations: 40,
        work_per_iter: SimDuration::from_us(50_000),
        imbalance: 0.05,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.10,
    },
    NpbApp {
        name: "is",
        iterations: 60,
        work_per_iter: SimDuration::from_us(33_000),
        imbalance: 0.06,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.10,
    },
    NpbApp {
        name: "lu",
        iterations: 2_500,
        work_per_iter: SimDuration::from_us(800),
        imbalance: 0.22,
        sync: SyncStyle::AdHocSpin,
        kernel_op_rate: 0.15,
    },
    NpbApp {
        name: "mg",
        iterations: 1_800,
        work_per_iter: SimDuration::from_us(1_100),
        imbalance: 0.20,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.15,
    },
    NpbApp {
        name: "sp",
        iterations: 1_600,
        work_per_iter: SimDuration::from_us(1_250),
        imbalance: 0.22,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.20,
    },
    NpbApp {
        name: "ua",
        iterations: 2_200,
        work_per_iter: SimDuration::from_us(900),
        imbalance: 0.28,
        sync: SyncStyle::OmpBarrier,
        kernel_op_rate: 0.15,
    },
];

/// Looks up an application by name.
pub fn app(name: &str) -> Option<NpbApp> {
    NPB_APPS.iter().copied().find(|a| a.name == name)
}

/// The dedicated-hardware (no overcommit, no delays) runtime estimate:
/// iterations × work — used to normalize measured times.
pub fn ideal_runtime(app: &NpbApp) -> SimDuration {
    app.work_per_iter * u64::from(app.iterations)
}

/// One OpenMP worker thread of an NPB run.
struct NpbWorker {
    app: NpbApp,
    barrier: BarrierId,
    mm_lock: KLockId,
    rng: SimRng,
    iter: u32,
    /// Sub-steps of the current iteration still to emit.
    phase: Phase,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Compute,
    MaybeKernelOp,
    Barrier,
    Done,
}

impl ThreadProgram for NpbWorker {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        loop {
            match self.phase {
                Phase::Compute => {
                    self.phase = Phase::MaybeKernelOp;
                    let jitter = (1.0 + self.rng.normal(0.0, self.app.imbalance)).max(0.1);
                    return ThreadAction::Compute(self.app.work_per_iter.mul_f64(jitter));
                }
                Phase::MaybeKernelOp => {
                    self.phase = Phase::Barrier;
                    if self.rng.chance(self.app.kernel_op_rate) {
                        return ThreadAction::KernelOp {
                            lock: self.mm_lock,
                            hold: SimDuration::from_us(2 + self.rng.below(3)),
                        };
                    }
                }
                Phase::Barrier => {
                    self.iter += 1;
                    self.phase = if self.iter >= self.app.iterations {
                        Phase::Done
                    } else {
                        Phase::Compute
                    };
                    return ThreadAction::BarrierWait(self.barrier);
                }
                Phase::Done => return ThreadAction::Exit,
            }
        }
    }

    fn label(&self) -> &str {
        self.app.name
    }
}

/// Handle to an installed NPB run.
#[derive(Clone, Debug)]
pub struct NpbRun {
    /// The spawned worker threads.
    pub threads: Vec<ThreadId>,
    /// The application installed.
    pub app: NpbApp,
}

/// Installs `app` into `dom` with `n_threads` workers (OpenMP sizes its
/// pool from the online vCPU count at startup) under the given spin
/// policy, and starts every thread.
pub fn install<S: HypervisorSched>(
    m: &mut Machine<S>,
    dom: DomId,
    app: NpbApp,
    n_threads: usize,
    policy: SpinPolicy,
) -> NpbRun {
    let budget = match app.sync {
        // lu's hand-rolled spinning ignores the OpenMP policy.
        SyncStyle::AdHocSpin => None,
        SyncStyle::OmpBarrier => policy.budget(),
    };
    let mut seed_rng = m.rng.fork(0x4e50_4200 ^ app.name.len() as u64);
    let guest = m.guest_mut(dom);
    let barrier = guest.sync.new_barrier(n_threads, budget);
    let mm_lock = guest.klocks.alloc();
    let mut threads = Vec::with_capacity(n_threads);
    for i in 0..n_threads {
        let worker = NpbWorker {
            app,
            barrier,
            mm_lock,
            rng: seed_rng.fork(i as u64),
            iter: 0,
            phase: Phase::Compute,
        };
        threads.push(guest.spawn(ThreadKind::User, Box::new(worker)));
    }
    for &t in &threads {
        m.start_thread(dom, t);
    }
    NpbRun { threads, app }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::ids::{ThreadId, VcpuId};
    use sim_core::time::SimTime;

    #[test]
    fn all_ten_apps_present() {
        let names: Vec<_> = NPB_APPS.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec!["bt", "cg", "dc", "ep", "ft", "is", "lu", "mg", "sp", "ua"]
        );
        assert!(app("lu").is_some());
        assert!(app("nope").is_none());
    }

    #[test]
    fn ideal_runtimes_are_comparable() {
        // All apps should take roughly the same dedicated time (the suite
        // normalizes per app anyway) — within 2 s ± 30%.
        for a in NPB_APPS {
            let t = ideal_runtime(&a);
            assert!(
                (SimDuration::from_ms(1_400)..=SimDuration::from_ms(2_600)).contains(&t),
                "{}: ideal runtime {t}",
                a.name
            );
        }
    }

    #[test]
    fn lu_uses_ad_hoc_spin() {
        assert_eq!(app("lu").unwrap().sync, SyncStyle::AdHocSpin);
        for a in NPB_APPS.iter().filter(|a| a.name != "lu") {
            assert_eq!(a.sync, SyncStyle::OmpBarrier);
        }
    }

    #[test]
    fn sync_intensity_ordering_matches_figure10() {
        // Barrier frequency = iterations / runtime; ua, mg, sp must be the
        // most barrier-intensive OpenMP apps, ep the least.
        let rate = |name: &str| {
            let a = app(name).unwrap();
            f64::from(a.iterations) / ideal_runtime(&a).as_secs_f64()
        };
        for heavy in ["ua", "mg", "sp"] {
            for light in ["ep", "ft", "is", "dc"] {
                assert!(
                    rate(heavy) > 4.0 * rate(light),
                    "{heavy} vs {light}: {} vs {}",
                    rate(heavy),
                    rate(light)
                );
            }
        }
    }

    #[test]
    fn worker_emits_compute_then_barrier() {
        let mut w = NpbWorker {
            app: app("ep").unwrap(),
            barrier: BarrierId(0),
            mm_lock: KLockId(0),
            rng: SimRng::new(1),
            iter: 0,
            phase: Phase::Compute,
        };
        let ctx = ProgramCtx {
            tid: ThreadId(0),
            now: SimTime::ZERO,
            vcpu: VcpuId(0),
            active_vcpus: 4,
        };
        let mut saw_barrier = false;
        let mut steps = 0;
        loop {
            match w.next(ctx) {
                ThreadAction::Compute(d) => assert!(d > SimDuration::ZERO),
                ThreadAction::BarrierWait(_) => saw_barrier = true,
                ThreadAction::KernelOp { .. } => {}
                ThreadAction::Exit => break,
                other => panic!("unexpected action {other:?}"),
            }
            steps += 1;
            assert!(steps < 100_000);
        }
        assert!(saw_barrier);
        assert_eq!(w.iter, 16);
    }
}
