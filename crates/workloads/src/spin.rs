//! OpenMP waiting-policy semantics (`OMP_WAIT_POLICY` / `GOMP_SPINCOUNT`).
//!
//! GCC's OpenMP runtime spins a configurable number of iterations at every
//! synchronization point before yielding to the kernel via `sys_futex`.
//! The count defaults by policy: 30 billion when `ACTIVE`, 0 when
//! `PASSIVE`, and 300 000 when the policy is undefined. The paper
//! evaluates all three (Figures 6 and 7); we convert iteration counts to
//! spin *time* budgets at a calibrated per-iteration cost.

use sim_core::time::SimDuration;

/// Approximate cost of one `cpu_relax()` spin iteration on the paper's
/// 2.53 GHz Xeon (a compiler barrier plus a load-compare).
pub const SPIN_ITERATION: SimDuration = SimDuration::from_ns(3);

/// The three evaluated `GOMP_SPINCOUNT` settings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpinPolicy {
    /// `OMP_WAIT_POLICY=ACTIVE`: 30 billion iterations — effectively
    /// spin-forever at application time scales.
    Active,
    /// Policy undefined: 300 K iterations (~0.9 ms) then futex.
    Default,
    /// `OMP_WAIT_POLICY=PASSIVE`: no spinning, immediate futex.
    Passive,
}

impl SpinPolicy {
    /// All three policies in the paper's order (30 G, 300 K, 0).
    pub const ALL: [SpinPolicy; 3] = [SpinPolicy::Active, SpinPolicy::Default, SpinPolicy::Passive];

    /// The `GOMP_SPINCOUNT` value this policy implies.
    pub fn spin_count(self) -> u64 {
        match self {
            SpinPolicy::Active => 30_000_000_000,
            SpinPolicy::Default => 300_000,
            SpinPolicy::Passive => 0,
        }
    }

    /// The spin-time budget handed to barriers: `None` = spin forever
    /// (ACTIVE's 30 G iterations ≈ 90 s — far beyond any run).
    pub fn budget(self) -> Option<SimDuration> {
        match self {
            SpinPolicy::Active => None,
            SpinPolicy::Default => Some(SPIN_ITERATION * SpinPolicy::Default.spin_count()),
            SpinPolicy::Passive => Some(SimDuration::ZERO),
        }
    }

    /// The paper's label for figures.
    pub fn label(self) -> &'static str {
        match self {
            SpinPolicy::Active => "GOMP_SPINCOUNT = 30 billion",
            SpinPolicy::Default => "GOMP_SPINCOUNT = 300K",
            SpinPolicy::Passive => "GOMP_SPINCOUNT = 0",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_policies() {
        assert_eq!(SpinPolicy::Active.budget(), None);
        assert_eq!(
            SpinPolicy::Default.budget(),
            Some(SimDuration::from_us(900))
        );
        assert_eq!(SpinPolicy::Passive.budget(), Some(SimDuration::ZERO));
    }

    #[test]
    fn counts_match_gomp_defaults() {
        assert_eq!(SpinPolicy::Active.spin_count(), 30_000_000_000);
        assert_eq!(SpinPolicy::Default.spin_count(), 300_000);
        assert_eq!(SpinPolicy::Passive.spin_count(), 0);
    }
}
