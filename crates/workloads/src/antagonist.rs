//! Adversarial-tenant workload models (scheduler attacks).
//!
//! Zhou et al.'s "Scheduler Vulnerabilities and Attacks in Cloud
//! Computing" shows a tenant can game Xen's credit accounting without
//! breaking any interface rule — purely by *timing* its own compute,
//! sleep and wake calls. This module reproduces the four attack classes
//! the ROADMAP names against this repo's hypervisor model:
//!
//! - [`AttackKind::TickEvade`] — compute between accounting samples,
//!   block just before each tick. Under sampled credit charging
//!   (`CreditConfig::sampled_burn`) the evader is never the tick's
//!   occupant, is never charged, and so never demotes to OVER while its
//!   honest neighbors do. Defense: exact burn accounting.
//! - [`AttackKind::BoostFarm`] — run in sub-tick bursts separated by
//!   timed self-wakeups so every burst starts from a fresh wakeup (in
//!   Xen: BOOST priority, which preempts UNDER/OVER vCPUs), while hiding
//!   across the tick so BOOST is never demoted. Defense: seeded
//!   randomized tick offsets (the sample point becomes unpredictable).
//! - [`AttackKind::IpiStorm`] — a semaphore ping-pong between threads on
//!   different vCPUs; every post raises a cross-vCPU reschedule IPI
//!   whose delivery path kicks the target vCPU with BOOST priority,
//!   *bypassing the preemption ratelimit* in all three backends.
//!   Defense: kick throttling.
//! - [`AttackKind::Oscillate`] — square-wave demand at the scale of the
//!   vScale daemon period, flipping the victim's measured extendability
//!   every few samples so its balancer thrashes freeze/unfreeze
//!   reconfigurations. Defense: freeze-rate hysteresis.
//!
//! Every program is a pure function of [`ProgramCtx::now`] and its own
//! counters — phase-locking is computed from the timing wheel's clock,
//! never wall time and never ambient entropy — so attack runs replay
//! bit-identically at any `VSCALE_THREADS`.
//!
//! Each attack has a *benign twin* ([`AntagonistMode::Benign`]): the same
//! mean CPU demand with the adversarial timing removed. The attack grid
//! uses the twin as its no-attack baseline, so measured degradation
//! isolates the harm of the *timing* from ordinary fair-share contention.

use guest_kernel::thread::{ProgramCtx, ThreadAction, ThreadKind, ThreadProgram};
use sim_core::time::{SimDuration, SimTime};
use vscale::config::{DefenseConfig, DomainSpec};
use vscale::{DomId, Machine};
use xen_sched::HypervisorSched;

/// The four attack classes (see the module docs for mechanics).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackKind {
    /// Tick-evasion theft: block just before every accounting sample.
    TickEvade,
    /// BOOST farming via timed self-wakeups.
    BoostFarm,
    /// Cross-vCPU reschedule-IPI storm through the event-channel path.
    IpiStorm,
    /// Extendability oscillation thrashing the balancer.
    Oscillate,
}

impl AttackKind {
    /// All attack classes, in grid order.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::TickEvade,
        AttackKind::BoostFarm,
        AttackKind::IpiStorm,
        AttackKind::Oscillate,
    ];

    /// Stable short name for bench axes and JSON.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::TickEvade => "tick_evade",
            AttackKind::BoostFarm => "boost_farm",
            AttackKind::IpiStorm => "ipi_storm",
            AttackKind::Oscillate => "oscillate",
        }
    }

    /// The defense that targets this attack class — and *only* it, so a
    /// defended measurement shows the matching knob doing the work
    /// rather than defense-in-depth.
    pub fn matching_defense(self) -> DefenseConfig {
        match self {
            AttackKind::TickEvade => DefenseConfig {
                exact_burn: true,
                ..DefenseConfig::default()
            },
            AttackKind::BoostFarm => DefenseConfig {
                tick_jitter: true,
                ..DefenseConfig::default()
            },
            AttackKind::IpiStorm => DefenseConfig {
                kick_throttle: true,
                ..DefenseConfig::default()
            },
            AttackKind::Oscillate => DefenseConfig {
                freeze_dwell: 8,
                ..DefenseConfig::default()
            },
        }
    }
}

/// Adversarial timing on, or the benign twin (same mean demand, no
/// phase-locking)?
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AntagonistMode {
    /// The attack as described in the module docs.
    Adversarial,
    /// Identical mean CPU demand with the adversarial timing removed —
    /// the attack grid's no-attack baseline tenant.
    Benign,
}

/// Parameters of one antagonist VM.
#[derive(Clone, Copy, Debug)]
pub struct AntagonistSpec {
    /// Which attack the VM mounts.
    pub kind: AttackKind,
    /// Adversarial timing or the benign twin.
    pub mode: AntagonistMode,
    /// vCPUs of the antagonist VM (one attack thread per vCPU, except
    /// the IPI storm's poster/waiter pair).
    pub n_vcpus: usize,
    /// Proportional-share weight (equal to the victim's by default: the
    /// attacks steal *beyond* the fair share, not via weight).
    pub weight: u32,
    /// The hypervisor's nominal tick period the evader/farmer
    /// phase-lock to (they assume the unjittered default grid).
    pub tick: SimDuration,
    /// Period of the oscillation square wave.
    pub osc_period: SimDuration,
}

impl AntagonistSpec {
    /// An antagonist with the grid's defaults: 2 vCPUs, weight 256, a
    /// 10 ms tick assumption and a 240 ms oscillation period. The
    /// oscillation half-period (120 ms) is sized well past the victim
    /// daemon's EMA time constant (~50 ms at α=0.2 over 10 ms samples),
    /// so each phase fully swings the smoothed extendability and defeats
    /// the daemon's own shrink/grow patience — a faster wave averages
    /// out and never thrashes anything.
    pub fn new(kind: AttackKind, mode: AntagonistMode) -> Self {
        AntagonistSpec {
            kind,
            mode,
            n_vcpus: 2,
            weight: 256,
            tick: SimDuration::from_ms(10),
            osc_period: SimDuration::from_ms(240),
        }
    }
}

/// Safety margin the evader keeps ahead of the predicted tick.
const EVADE_GUARD: SimDuration = SimDuration::from_us(700);
/// How long the evader stays blocked past the predicted tick. Must
/// exceed the scheduler's 1 ms preemption ratelimit: the occupant that
/// took the pCPU when the evader blocked has then run long enough that
/// the evader's BOOST wakeup preempts it immediately — a sub-ratelimit
/// nap would leave the evader queued until the occupant's whole 30 ms
/// slice expired, starving the attack.
const EVADE_REST: SimDuration = SimDuration::from_us(1_500);
/// Extra post-tick rest per sibling evader thread (thread `i` wakes
/// `i × EVADE_STAGGER` later), so sibling wakeups never race each other
/// for one pCPU — see [`TickEvader::stagger`].
const EVADE_STAGGER: SimDuration = SimDuration::from_us(1_200);
/// One BOOST-farm compute burst (well under a tick). Sized with
/// [`FARM_GAP`] so the farmer's duty (~62% per vCPU after tick-hiding)
/// exceeds its fair share: the surplus is what BOOST lets it steal, and
/// what tick-jitter-induced charging takes back by demoting it.
const FARM_BURST: SimDuration = SimDuration::from_us(3_300);
/// Self-wakeup gap between farm bursts (every burst is a fresh wake).
/// Like [`EVADE_REST`], deliberately above the preemption ratelimit.
const FARM_GAP: SimDuration = SimDuration::from_us(1_050);
/// How late an answer may arrive past the farmer's expected resume
/// before it counts as a starvation episode (see [`BoostFarmer::expect`]).
const FARM_STALL: SimDuration = SimDuration::from_us(2_000);
/// Benign farm twin's compute burst: the same ~60% mean duty as the
/// adversarial farmer in the same short-burst shape, but with naps that
/// ignore the scheduler's preemption ratelimit instead of being timed
/// just past it — the ordinary interactive tenant the farmer outplays.
const FARM_BENIGN_RUN: SimDuration = SimDuration::from_us(1_000);
/// Benign farm twin's nap between bursts (~60% duty with
/// [`FARM_BENIGN_RUN`]).
const FARM_BENIGN_NAP: SimDuration = SimDuration::from_us(1_000);
/// Poster-side compute between semaphore posts (storm cadence).
const STORM_WORK: SimDuration = SimDuration::from_us(80);
/// Waiter-side compute per received post.
const STORM_HANDLER: SimDuration = SimDuration::from_us(10);
/// Oscillator compute chunk within the high half-period (the chunks
/// run back-to-back: the high phase saturates the vCPU).
const OSC_CHUNK: SimDuration = SimDuration::from_us(500);

/// Phase within a repeating `period` grid at `now`.
fn phase_ns(now: SimTime, period: SimDuration) -> u64 {
    now.since(SimTime::ZERO).as_ns() % period.as_ns().max(1)
}

/// Computes until `EVADE_GUARD` before the next predicted tick, then
/// blocks across it, waking `EVADE_REST` (plus a per-thread stagger)
/// after. Every `next` call re-derives the phase from `now`, so
/// contention-induced drift self-corrects to the grid.
struct TickEvader {
    tick: SimDuration,
    mode: AntagonistMode,
    /// Per-thread wake stagger: sibling evaders that wake at the exact
    /// same instant race for the same pCPU and one queues behind the
    /// other's BOOST for the rest of the cycle; spreading the wakes
    /// lets each land on a pCPU whose occupant is preemptible.
    stagger: SimDuration,
    /// Benign twin's alternation state.
    resting: bool,
}

impl ThreadProgram for TickEvader {
    fn next(&mut self, ctx: ProgramCtx) -> ThreadAction {
        let on = self.tick.as_ns() - EVADE_GUARD.as_ns();
        match self.mode {
            AntagonistMode::Adversarial => {
                let to_tick = self.tick.as_ns() - phase_ns(ctx.now, self.tick);
                if to_tick > EVADE_GUARD.as_ns() {
                    ThreadAction::Compute(SimDuration::from_ns(to_tick - EVADE_GUARD.as_ns()))
                } else {
                    ThreadAction::Sleep(SimDuration::from_ns(
                        to_tick + EVADE_REST.as_ns() + self.stagger.as_ns(),
                    ))
                }
            }
            AntagonistMode::Benign => {
                // Same ~90% duty cycle, but the 10.3 ms period drifts
                // freely through the 10 ms tick grid.
                self.resting = !self.resting;
                if self.resting {
                    ThreadAction::Sleep(EVADE_GUARD + EVADE_REST)
                } else {
                    ThreadAction::Compute(SimDuration::from_ns(on))
                }
            }
        }
    }

    fn label(&self) -> &str {
        "tick-evader"
    }
}

/// Short bursts, each begun by a timed self-wakeup (a fresh BOOST in
/// credit), hiding across every predicted tick so the BOOST is never
/// caught and demoted.
struct BoostFarmer {
    tick: SimDuration,
    mode: AntagonistMode,
    /// Per-thread wake stagger, same rationale as [`TickEvader::stagger`].
    stagger: SimDuration,
    resting: bool,
    /// When this thread expected to be asked for its next action; if the
    /// scheduler answers much later, the thread was starved (queued
    /// behind a sibling or a refused preemption) and it recovers with a
    /// long catch-up burst instead of immediately napping again —
    /// without this, one starvation episode chains into the next and a
    /// farmer thread can stall for whole accounting periods.
    expect: Option<SimTime>,
}

impl ThreadProgram for BoostFarmer {
    fn next(&mut self, ctx: ProgramCtx) -> ThreadAction {
        match self.mode {
            AntagonistMode::Adversarial => {
                let to_tick = self.tick.as_ns() - phase_ns(ctx.now, self.tick);
                let starved = self.expect.is_some_and(|e| ctx.now > e + FARM_STALL);
                if to_tick <= EVADE_GUARD.as_ns() {
                    // Hide across the sample point.
                    self.resting = false;
                    let nap =
                        SimDuration::from_ns(to_tick + EVADE_REST.as_ns() + self.stagger.as_ns());
                    self.expect = Some(ctx.now + nap);
                    return ThreadAction::Sleep(nap);
                }
                if starved {
                    // Catch-up: compute straight to the guard boundary.
                    self.resting = false;
                    let burst = SimDuration::from_ns(to_tick - EVADE_GUARD.as_ns());
                    self.expect = Some(ctx.now + burst);
                    return ThreadAction::Compute(burst);
                }
                self.resting = !self.resting;
                if self.resting {
                    self.expect = Some(ctx.now + FARM_GAP);
                    ThreadAction::Sleep(FARM_GAP)
                } else {
                    let burst =
                        SimDuration::from_ns(FARM_BURST.as_ns().min(to_tick - EVADE_GUARD.as_ns()));
                    self.expect = Some(ctx.now + burst);
                    ThreadAction::Compute(burst)
                }
            }
            AntagonistMode::Benign => {
                // Same mean demand, delivered in long bursts with rare
                // wakeups (no BOOST harvesting, no tick hiding).
                self.resting = !self.resting;
                if self.resting {
                    ThreadAction::Sleep(FARM_BENIGN_NAP)
                } else {
                    ThreadAction::Compute(FARM_BENIGN_RUN)
                }
            }
        }
    }

    fn label(&self) -> &str {
        "boost-farmer"
    }
}

/// Storm poster: posts the ping-pong semaphore between tiny compute
/// chunks, raising one cross-vCPU reschedule IPI per post.
struct StormPoster {
    sem: guest_kernel::thread::SemId,
    mode: AntagonistMode,
    posting: bool,
}

impl ThreadProgram for StormPoster {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        match self.mode {
            AntagonistMode::Adversarial => {
                self.posting = !self.posting;
                if self.posting {
                    ThreadAction::SemPost(self.sem)
                } else {
                    ThreadAction::Compute(STORM_WORK)
                }
            }
            // Same compute demand, no posts: the waiter sleeps forever
            // and no IPIs are raised.
            AntagonistMode::Benign => ThreadAction::Compute(STORM_WORK),
        }
    }

    fn label(&self) -> &str {
        "storm-poster"
    }
}

/// Storm waiter: parks on the semaphore (on another vCPU) and does a
/// token amount of work per received post — its job is to *be woken*.
struct StormWaiter {
    sem: guest_kernel::thread::SemId,
    mode: AntagonistMode,
    waiting: bool,
}

impl ThreadProgram for StormWaiter {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        match self.mode {
            AntagonistMode::Adversarial => {
                self.waiting = !self.waiting;
                if self.waiting {
                    ThreadAction::SemWait(self.sem)
                } else {
                    ThreadAction::Compute(STORM_HANDLER)
                }
            }
            AntagonistMode::Benign => ThreadAction::Sleep(SimDuration::from_ms(10)),
        }
    }

    fn label(&self) -> &str {
        "storm-waiter"
    }
}

/// Square-wave demand: compute through one half-period, sleep through
/// the other — phase-locked to the wheel clock so all oscillator
/// threads flip together and the domain's consumption (hence every
/// neighbor's measured extendability) swings rail to rail.
struct Oscillator {
    period: SimDuration,
    mode: AntagonistMode,
    resting: bool,
}

impl ThreadProgram for Oscillator {
    fn next(&mut self, ctx: ProgramCtx) -> ThreadAction {
        match self.mode {
            AntagonistMode::Adversarial => {
                let pos = phase_ns(ctx.now, self.period);
                let half = self.period.as_ns() / 2;
                if pos < half {
                    let chunk = OSC_CHUNK.as_ns().min(half - pos);
                    ThreadAction::Compute(SimDuration::from_ns(chunk))
                } else {
                    ThreadAction::Sleep(SimDuration::from_ns(self.period.as_ns() - pos))
                }
            }
            AntagonistMode::Benign => {
                // Uniform 50% duty with no large-scale square wave.
                self.resting = !self.resting;
                if self.resting {
                    ThreadAction::Sleep(OSC_CHUNK)
                } else {
                    ThreadAction::Compute(OSC_CHUNK)
                }
            }
        }
    }

    fn label(&self) -> &str {
        "oscillator"
    }
}

/// Adds one antagonist VM mounting `spec.kind` in `spec.mode` and
/// returns its domain. The VM is a plain fixed-size SMP domain — the
/// attacks need no special privileges, which is the point.
pub fn install_antagonist<S: HypervisorSched>(m: &mut Machine<S>, spec: AntagonistSpec) -> DomId {
    let dom = m.add_domain(DomainSpec::fixed(spec.n_vcpus).with_weight(spec.weight));
    let guest = m.guest_mut(dom);
    let mut threads = Vec::new();
    match spec.kind {
        AttackKind::TickEvade => {
            for i in 0..spec.n_vcpus {
                threads.push(guest.spawn(
                    ThreadKind::User,
                    Box::new(TickEvader {
                        tick: spec.tick,
                        mode: spec.mode,
                        stagger: EVADE_STAGGER * i as u64,
                        resting: false,
                    }),
                ));
            }
        }
        AttackKind::BoostFarm => {
            for i in 0..spec.n_vcpus {
                threads.push(guest.spawn(
                    ThreadKind::User,
                    Box::new(BoostFarmer {
                        tick: spec.tick,
                        mode: spec.mode,
                        stagger: EVADE_STAGGER * i as u64,
                        resting: false,
                        expect: None,
                    }),
                ));
            }
        }
        AttackKind::IpiStorm => {
            let sem = guest.sync.new_semaphore(0);
            threads.push(guest.spawn(
                ThreadKind::User,
                Box::new(StormPoster {
                    sem,
                    mode: spec.mode,
                    posting: false,
                }),
            ));
            for _ in 1..spec.n_vcpus.max(2) {
                threads.push(guest.spawn(
                    ThreadKind::User,
                    Box::new(StormWaiter {
                        sem,
                        mode: spec.mode,
                        waiting: false,
                    }),
                ));
            }
        }
        AttackKind::Oscillate => {
            for _ in 0..spec.n_vcpus {
                threads.push(guest.spawn(
                    ThreadKind::User,
                    Box::new(Oscillator {
                        period: spec.osc_period,
                        mode: spec.mode,
                        resting: false,
                    }),
                ));
            }
        }
    }
    for t in threads {
        m.start_thread(dom, t);
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use vscale::config::MachineConfig;

    fn host() -> Machine {
        Machine::new(MachineConfig {
            n_pcpus: 2,
            seed: 11,
            ..MachineConfig::default()
        })
    }

    #[test]
    fn every_attack_runs_and_consumes_cpu() {
        for kind in AttackKind::ALL {
            for mode in [AntagonistMode::Adversarial, AntagonistMode::Benign] {
                let mut m = host();
                let dom = install_antagonist(&mut m, AntagonistSpec::new(kind, mode));
                m.run_until(SimTime::from_secs(1));
                let run = m.hv().domain_run_total(dom);
                assert!(
                    run >= SimDuration::from_ms(100),
                    "{:?}/{mode:?} consumed only {run:?}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn benign_twin_demand_matches_adversarial_within_2x() {
        // The twin exists to isolate timing harm from demand: on an
        // uncontended host both modes must consume the same order of
        // CPU, else baseline comparisons would be apples to oranges.
        for kind in AttackKind::ALL {
            let runs: Vec<u64> = [AntagonistMode::Adversarial, AntagonistMode::Benign]
                .into_iter()
                .map(|mode| {
                    let mut m = host();
                    let dom = install_antagonist(&mut m, AntagonistSpec::new(kind, mode));
                    m.run_until(SimTime::from_secs(2));
                    m.hv().domain_run_total(dom).as_ns()
                })
                .collect();
            let (a, b) = (runs[0].max(1), runs[1].max(1));
            let ratio_x100 = a.max(b) * 100 / a.min(b);
            assert!(
                ratio_x100 <= 200,
                "{}: adversarial {a} ns vs benign {b} ns (ratio x100 = {ratio_x100})",
                kind.label()
            );
        }
    }

    #[test]
    fn ipi_storm_raises_resched_ipis_benign_twin_does_not() {
        let count = |mode| {
            let mut m = host();
            let dom = install_antagonist(&mut m, AntagonistSpec::new(AttackKind::IpiStorm, mode));
            m.run_until(SimTime::from_secs(1));
            let stats = m.domain_stats(dom);
            stats.resched_ipis.iter().sum::<u64>()
        };
        let stormed = count(AntagonistMode::Adversarial);
        let benign = count(AntagonistMode::Benign);
        assert!(
            stormed > 1_000,
            "storm produced only {stormed} reschedule IPIs"
        );
        assert!(
            benign < stormed / 10,
            "benign twin should be quiet: {benign} vs {stormed}"
        );
    }

    #[test]
    fn tick_evader_keeps_credits_under_sampled_accounting() {
        use xen_sched::CreditConfig;
        // On a contended sampled-burn host the evader's credit balance
        // stays non-negative (it is never the tick occupant), while a
        // benign tenant with the same demand gets charged.
        let credits = |mode| {
            let mut m = Machine::new(MachineConfig {
                n_pcpus: 1,
                seed: 5,
                credit: CreditConfig {
                    sampled_burn: true,
                    ..CreditConfig::default()
                },
                ..MachineConfig::default()
            });
            let dom = install_antagonist(
                &mut m,
                AntagonistSpec {
                    n_vcpus: 1,
                    ..AntagonistSpec::new(AttackKind::TickEvade, mode)
                },
            );
            m.run_until(SimTime::from_secs(2));
            m.hv().domain_run_total(dom)
        };
        // Both modes burn ~90% duty on an otherwise idle pCPU; the
        // sampled ledger sees wildly different charges, but run totals
        // (exact stats) must match closely. This pins the fidelity knob:
        // consumption identical, accounting divergent.
        let adv = credits(AntagonistMode::Adversarial).as_ns() as i64;
        let ben = credits(AntagonistMode::Benign).as_ns() as i64;
        let diff = (adv - ben).abs();
        assert!(
            diff < (adv.max(ben)) / 5,
            "duty cycles drifted apart: adversarial {adv} vs benign {ben}"
        );
    }
}
