//! The paper's §7 future work, made runnable: an application that is
//! *aware of the VM's real computing power*.
//!
//! A conventional OpenMP program sizes its thread pool once at startup
//! and then splits every parallel region across all of them. When vScale
//! shrinks the VM to `k` active vCPUs, `n > k` equal slices pack unevenly
//! — the doubled vCPU becomes the barrier straggler, and (under ACTIVE
//! spinning) the early finishers burn the VM's own allocation waiting for
//! it.
//!
//! The adaptive worker instead consults [`ProgramCtx::active_vcpus`] (the
//! vScale-exported effective parallelism) at every chunk boundary and
//! re-splits the *remaining* iteration work across exactly that many
//! slices: surplus threads sleep the iteration out instead of computing
//! or spinning. The `ablation_futurework` bench compares the two.

use guest_kernel::thread::{BarrierId, ProgramCtx, ThreadAction, ThreadKind, ThreadProgram};

use guest_kernel::ThreadId;
use sim_core::rng::SimRng;
use sim_core::time::SimDuration;
use vscale::{DomId, Machine};
use xen_sched::HypervisorSched;

/// Parameters of the adaptive data-parallel application.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Iterations (barrier intervals).
    pub iterations: u32,
    /// Total computation per iteration (split across participants).
    pub work_per_iter: SimDuration,
    /// Work imbalance across slices (sigma fraction).
    pub imbalance: f64,
    /// Whether workers consult the effective parallelism (`true`) or
    /// behave like a fixed OpenMP pool (`false`).
    pub adaptive: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            iterations: 600,
            work_per_iter: SimDuration::from_us(3_200),
            imbalance: 0.15,
            adaptive: true,
        }
    }
}

struct AdaptiveWorker {
    cfg: AdaptiveConfig,
    /// This worker's rank in the pool.
    rank: usize,
    /// Pool size (threads at the barrier).
    pool: usize,
    barrier: BarrierId,
    rng: SimRng,
    iter: u32,
    at_barrier: bool,
}

impl ThreadProgram for AdaptiveWorker {
    fn next(&mut self, ctx: ProgramCtx) -> ThreadAction {
        if self.at_barrier {
            self.at_barrier = false;
            self.iter += 1;
            return ThreadAction::BarrierWait(self.barrier);
        }
        if self.iter >= self.cfg.iterations {
            return ThreadAction::Exit;
        }
        self.at_barrier = true;
        // How many workers participate in this iteration's split.
        let participants = if self.cfg.adaptive {
            ctx.active_vcpus.clamp(1, self.pool)
        } else {
            self.pool
        };
        if self.rank >= participants {
            // Surplus worker: skip straight to the barrier (a real
            // adaptive runtime parks it; the tiny compute models the
            // bookkeeping of discovering there is no slice for it).
            return ThreadAction::Compute(SimDuration::from_us(5));
        }
        let share = self.cfg.work_per_iter / participants as u64;
        let jitter = (1.0 + self.rng.normal(0.0, self.cfg.imbalance)).max(0.1);
        ThreadAction::Compute(share.mul_f64(jitter))
    }

    fn label(&self) -> &str {
        if self.cfg.adaptive {
            "adaptive-worker"
        } else {
            "fixed-worker"
        }
    }
}

/// Handle to an installed adaptive run.
#[derive(Clone, Debug)]
pub struct AdaptiveRun {
    /// Worker thread ids.
    pub threads: Vec<ThreadId>,
}

/// Installs the adaptive (or fixed) data-parallel app with `n_threads`
/// workers and starts them.
pub fn install<S: HypervisorSched>(
    m: &mut Machine<S>,
    dom: DomId,
    cfg: AdaptiveConfig,
    n_threads: usize,
) -> AdaptiveRun {
    let mut seed_rng = m.rng.fork(0xada7_0001);
    let guest = m.guest_mut(dom);
    // Adaptive runtimes block surplus workers rather than spin them:
    // futex barrier (zero spin). The fixed variant keeps OpenMP's default
    // 300 K spin so the comparison is against stock behaviour.
    let budget = if cfg.adaptive {
        Some(SimDuration::ZERO)
    } else {
        crate::spin::SpinPolicy::Default.budget()
    };
    let barrier = guest.sync.new_barrier(n_threads, budget);
    let mut threads = Vec::with_capacity(n_threads);
    for rank in 0..n_threads {
        threads.push(guest.spawn(
            ThreadKind::User,
            Box::new(AdaptiveWorker {
                cfg,
                rank,
                pool: n_threads,
                barrier,
                rng: seed_rng.fork(rank as u64),
                iter: 0,
                at_barrier: false,
            }),
        ));
    }
    for &t in &threads {
        m.start_thread(dom, t);
    }
    AdaptiveRun { threads }
}

/// The work an adaptive run performs, for throughput accounting.
pub fn total_work(cfg: &AdaptiveConfig) -> SimDuration {
    cfg.work_per_iter * u64::from(cfg.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use vscale::config::{MachineConfig, SystemConfig};

    fn run(adaptive: bool, seed: u64) -> f64 {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 4,
            seed,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(SystemConfig::VScale.domain_spec(4).with_weight(512));
        // The §5.2.1 fluctuating desktops: the VM hovers mostly at 3
        // active vCPUs — exactly where a fixed 4-way split packs worst.
        crate::desktop::add_desktops(&mut m, 2, crate::desktop::SlideshowConfig::default());
        let cfg = AdaptiveConfig {
            iterations: 400,
            adaptive,
            ..AdaptiveConfig::default()
        };
        install(&mut m, vm, cfg, 4);
        let start = m.now();
        let end = m
            .run_until_exited(vm, SimTime::from_secs(60))
            .expect("adaptive app finishes");
        end.since(start).as_secs_f64()
    }

    #[test]
    fn adaptive_split_beats_fixed_split_when_shrunk() {
        let seeds = [1u64, 5, 9];
        let fixed: f64 = seeds.iter().map(|&s| run(false, s)).sum::<f64>() / 3.0;
        let adaptive: f64 = seeds.iter().map(|&s| run(true, s)).sum::<f64>() / 3.0;
        assert!(
            adaptive < fixed,
            "awareness of effective parallelism should help: adaptive {adaptive:.2}s vs fixed {fixed:.2}s"
        );
    }

    #[test]
    fn surplus_workers_park_instead_of_computing() {
        // With 2 active vCPUs reported, ranks 2..4 must take the cheap
        // path.
        let cfg = AdaptiveConfig::default();
        let mut w = AdaptiveWorker {
            cfg,
            rank: 3,
            pool: 4,
            barrier: BarrierId(0),
            rng: SimRng::new(1),
            iter: 0,
            at_barrier: false,
        };
        let ctx = ProgramCtx {
            tid: ThreadId(3),
            now: SimTime::ZERO,
            vcpu: guest_kernel::VcpuId(0),
            active_vcpus: 2,
        };
        match w.next(ctx) {
            ThreadAction::Compute(d) => assert!(d <= SimDuration::from_us(5)),
            other => panic!("expected cheap skip, got {other:?}"),
        }
        // A participant rank splits the work two ways.
        let mut w0 = AdaptiveWorker {
            cfg,
            rank: 0,
            pool: 4,
            barrier: BarrierId(0),
            rng: SimRng::new(2),
            iter: 0,
            at_barrier: false,
        };
        match w0.next(ctx) {
            ThreadAction::Compute(d) => {
                let expected = cfg.work_per_iter / 2;
                assert!(
                    d > expected.mul_f64(0.5) && d < expected.mul_f64(1.6),
                    "slice {d} vs expected ~{expected}"
                );
            }
            other => panic!("expected a slice, got {other:?}"),
        }
    }
}
