//! Apache httpd + httperf behavioural model (Figure 14).
//!
//! The paper's setup: one machine runs Apache in the 4-vCPU test VM, a
//! second runs `httperf` requesting a 16 KB file at a constant rate over a
//! 1 GbE link. Performance is measured as reply rate, connection time and
//! response time. The bottlenecks that shape Figure 14 all appear here:
//!
//! - each request arrives as a NIC interrupt on the event channel's bound
//!   vCPU — a preempted vCPU delays every accept (connection time);
//! - worker threads parse and serve the request, touching kernel network
//!   locks whose holders can be preempted (the "performance break" that
//!   pv-spinlock removes);
//! - replies serialize on the 1 GbE wire: 16 KB + headers ≈ 135 µs, so the
//!   link saturates at ~7 K replies/s — the ceiling vScale+pvlock
//!   approaches.

use guest_kernel::thread::{
    IoQueueId, KLockId, ProgramCtx, ThreadAction, ThreadKind, ThreadProgram,
};
use guest_kernel::{ThreadId, VcpuId};
use sim_core::rng::SimRng;
use sim_core::time::{SimDuration, SimTime};
use vscale::{DomId, Machine};
use xen_sched::evtchn::PortId;
use xen_sched::HypervisorSched;

/// The served file plus HTTP headers, on the wire.
pub const REPLY_BYTES: u64 = 16 * 1024 + 512;

/// Apache server parameters.
#[derive(Clone, Copy, Debug)]
pub struct ApacheConfig {
    /// Worker threads (httpd `ThreadsPerChild`-style pool).
    pub workers: usize,
    /// CPU to parse a request and prepare the reply.
    pub service_cpu: SimDuration,
    /// Kernel lock (socket/accept) hold time per request.
    pub kernel_lock_hold: SimDuration,
    /// Probability a request takes the kernel lock path.
    pub kernel_lock_rate: f64,
    /// Listen-queue depth: connections arriving against a full queue are
    /// dropped (the client sees a failed connection).
    pub listen_backlog: u64,
}

impl Default for ApacheConfig {
    fn default() -> Self {
        ApacheConfig {
            workers: 32,
            service_cpu: SimDuration::from_us(70),
            kernel_lock_hold: SimDuration::from_us(4),
            kernel_lock_rate: 0.9,
            listen_backlog: 256,
        }
    }
}

/// One httpd worker: block for a connection, serve it, send the reply.
struct ApacheWorker {
    cfg: ApacheConfig,
    queue: IoQueueId,
    net_lock: KLockId,
    rng: SimRng,
    phase: Phase,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Accept,
    KernelPath,
    Serve,
    Reply,
}

impl ThreadProgram for ApacheWorker {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        loop {
            match self.phase {
                Phase::Accept => {
                    self.phase = Phase::KernelPath;
                    return ThreadAction::IoWait(self.queue);
                }
                Phase::KernelPath => {
                    self.phase = Phase::Serve;
                    if self.rng.chance(self.cfg.kernel_lock_rate) {
                        return ThreadAction::KernelOp {
                            lock: self.net_lock,
                            hold: self.cfg.kernel_lock_hold,
                        };
                    }
                }
                Phase::Serve => {
                    self.phase = Phase::Reply;
                    let jitter = (1.0 + self.rng.normal(0.0, 0.15)).max(0.3);
                    return ThreadAction::Compute(self.cfg.service_cpu.mul_f64(jitter));
                }
                Phase::Reply => {
                    self.phase = Phase::Accept;
                    return ThreadAction::NicSend { bytes: REPLY_BYTES };
                }
            }
        }
    }

    fn label(&self) -> &str {
        "httpd-worker"
    }

    fn save_state(&self, w: &mut sim_core::snap::SnapWriter) {
        for s in self.rng.state() {
            w.u64(s);
        }
        w.u8(match self.phase {
            Phase::Accept => 0,
            Phase::KernelPath => 1,
            Phase::Serve => 2,
            Phase::Reply => 3,
        });
    }

    fn load_state(&mut self, r: &mut sim_core::snap::SnapReader<'_>) {
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = r.u64();
        }
        self.rng = SimRng::from_state(s);
        self.phase = match r.u8() {
            0 => Phase::Accept,
            1 => Phase::KernelPath,
            2 => Phase::Serve,
            3 => Phase::Reply,
            t => panic!("unknown httpd worker phase tag {t}"),
        };
    }
}

/// A running Apache instance.
#[derive(Clone, Debug)]
pub struct ApacheServer {
    /// The request queue fed by the NIC interrupt.
    pub queue: IoQueueId,
    /// The event-channel port requests arrive on.
    pub port: PortId,
    /// Worker thread ids.
    pub workers: Vec<ThreadId>,
}

/// Installs Apache into `dom`: request queue, IRQ port bound to vCPU0,
/// worker pool.
pub fn install<S: HypervisorSched>(
    m: &mut Machine<S>,
    dom: DomId,
    cfg: ApacheConfig,
) -> ApacheServer {
    let mut seed_rng = m.rng.fork(0x4150_4143);
    let guest = m.guest_mut(dom);
    let queue = guest.new_io_queue();
    guest.set_io_queue_capacity(queue, cfg.listen_backlog);
    let net_lock = guest.klocks.alloc();
    let mut workers = Vec::with_capacity(cfg.workers);
    for i in 0..cfg.workers {
        workers.push(guest.spawn(
            ThreadKind::User,
            Box::new(ApacheWorker {
                cfg,
                queue,
                net_lock,
                rng: seed_rng.fork(i as u64),
                phase: Phase::Accept,
            }),
        ));
    }
    let port = m.bind_io_port(dom, queue, VcpuId(0));
    for &t in &workers {
        m.start_thread(dom, t);
    }
    ApacheServer {
        queue,
        port,
        workers,
    }
}

/// Schedules an httperf-style constant-rate request stream: `rate`
/// requests/s for `duration`, with exponential inter-arrival jitter.
/// Returns the number of requests injected.
pub fn run_client<S: HypervisorSched>(
    m: &mut Machine<S>,
    dom: DomId,
    server: &ApacheServer,
    rate_per_sec: f64,
    start: SimTime,
    duration: SimDuration,
) -> u64 {
    assert!(rate_per_sec > 0.0);
    let mut rng = m.rng.fork(0x4854_5450);
    let end = start + duration;
    let mut t = start;
    let mut n = 0;
    loop {
        let gap = SimDuration::from_us_f64(rng.exponential(1e6 / rate_per_sec));
        t += gap;
        if t >= end {
            break;
        }
        m.inject_io(dom, server.port, t, 1);
        n += 1;
    }
    n
}

/// httperf-style measurement summary over one run window.
#[derive(Clone, Copy, Debug)]
pub struct HttperfSummary {
    /// Requests sent.
    pub requests: u64,
    /// Replies fully on the wire within the window.
    pub replies: u64,
    /// Average reply rate over the window, per second.
    pub reply_rate: f64,
    /// Mean connection time (request arrival → interrupt handled), ms.
    pub connection_time_ms: f64,
    /// Mean response time (accept → reply on the wire), ms.
    pub response_time_ms: f64,
    /// Connections dropped by the full listen queue over the run so far
    /// (httperf's `fd-unavail`/refused count — the saturation signal).
    pub drops: u64,
}

/// Computes the Figure 14 metrics from the machine's I/O logs over the
/// measurement window `[start, start + window]` — httperf reports the
/// average reply rate over its own run window.
///
/// Requests flow FIFO through the accept queue and the worker pool, so
/// arrival, delivery and completion logs are matched by index.
pub fn summarize<S: HypervisorSched>(
    m: &Machine<S>,
    dom: DomId,
    server: &ApacheServer,
    start: SimTime,
    window: SimDuration,
) -> HttperfSummary {
    let (arrivals, deliveries, completions) = m.io_logs(dom);
    let drops = m.guest(dom).io_drops(server.queue);
    let end = start + window;
    let requests = arrivals.len() as u64;
    let replies = completions
        .iter()
        .filter(|&&c| c >= start && c <= end)
        .count() as u64;
    let mut conn = 0.0;
    let mut conn_n = 0u64;
    for (a, d) in arrivals.iter().zip(deliveries.iter()) {
        conn += d.since(*a).as_ms_f64();
        conn_n += 1;
    }
    let mut resp = 0.0;
    let mut resp_n = 0u64;
    for (d, c) in deliveries.iter().zip(completions.iter()) {
        if *c > end {
            break;
        }
        resp += c.since(*d).as_ms_f64();
        resp_n += 1;
    }
    HttperfSummary {
        requests,
        replies,
        reply_rate: replies as f64 / window.as_secs_f64(),
        connection_time_ms: if conn_n > 0 {
            conn / conn_n as f64
        } else {
            0.0
        },
        response_time_ms: if resp_n > 0 {
            resp / resp_n as f64
        } else {
            0.0
        },
        drops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vscale::config::{DomainSpec, MachineConfig};

    #[test]
    fn wire_time_caps_at_about_7k_per_sec() {
        // 16.5 KB per reply at 1 Gb/s -> ~135 µs -> ~7.4 K/s ceiling.
        let wire_us = REPLY_BYTES as f64 * 8.0 / 1e9 * 1e6;
        let ceiling = 1e6 / wire_us;
        assert!((6_500.0..8_000.0).contains(&ceiling), "{ceiling}");
    }

    #[test]
    fn uncontended_server_answers_at_request_rate() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 4,
            ..MachineConfig::default()
        });
        let d = m.add_domain(DomainSpec::fixed(4));
        let srv = install(&mut m, d, ApacheConfig::default());
        let window = SimDuration::from_ms(500);
        let sent = run_client(&mut m, d, &srv, 2_000.0, SimTime::from_ms(10), window);
        m.run_until(SimTime::from_ms(700));
        let s = summarize(&m, d, &srv, SimTime::from_ms(10), window);
        assert_eq!(s.requests, sent);
        assert_eq!(s.drops, 0, "uncontended run never fills the backlog");
        // Nearly everything answered; latencies are sub-millisecond.
        assert!(
            s.replies as f64 >= 0.95 * sent as f64,
            "{} of {} replied",
            s.replies,
            sent
        );
        assert!(s.connection_time_ms < 1.0, "conn {}", s.connection_time_ms);
        assert!(s.response_time_ms < 5.0, "resp {}", s.response_time_ms);
    }

    #[test]
    fn overload_saturates_at_the_wire_rate() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 4,
            ..MachineConfig::default()
        });
        let d = m.add_domain(DomainSpec::fixed(4));
        let srv = install(&mut m, d, ApacheConfig::default());
        let window = SimDuration::from_ms(500);
        run_client(&mut m, d, &srv, 12_000.0, SimTime::from_ms(10), window);
        m.run_until(SimTime::from_ms(700));
        let s = summarize(&m, d, &srv, SimTime::from_ms(10), window);
        assert!(
            s.reply_rate < 8_000.0,
            "cannot exceed the 1 GbE ceiling: {}",
            s.reply_rate
        );
        assert!(
            s.reply_rate > 4_000.0,
            "should still serve: {}",
            s.reply_rate
        );
    }
}
