//! Virtual-desktop background VMs (§5.2.1's experimental setting).
//!
//! The paper's background load is a set of 2-vCPU virtual desktops running
//! a "photo-slideshow": every couple of seconds the viewer opens a
//! 2802×1849 JPEG, producing a CPU spike followed by idle think time.
//! This makes the co-located VMs' pCPU consumption *fluctuate* — the exact
//! condition under which a fixed vCPU count is always wrong and vScale's
//! rapid adaptation pays off.

use guest_kernel::thread::{ProgramCtx, ThreadAction, ThreadKind, ThreadProgram};
use sim_core::rng::SimRng;
use sim_core::time::SimDuration;
use vscale::config::DomainSpec;
use vscale::{DomId, Machine};
use xen_sched::HypervisorSched;

/// Slideshow parameters.
#[derive(Clone, Copy, Debug)]
pub struct SlideshowConfig {
    /// Mean think time between image openings.
    pub think_mean: SimDuration,
    /// Mean total CPU burst to decode and render one image.
    pub burst_mean: SimDuration,
    /// CPU chunk per frame/stripe within a burst: decode-render loops
    /// yield to the display path between stripes, so the burst is a train
    /// of compute chunks separated by tiny sleeps. Every chunk boundary
    /// is a fresh wakeup — and in Xen a fresh BOOST — which is what makes
    /// interactive neighbours so disruptive to co-located VMs.
    pub frame_chunk: SimDuration,
    /// Sleep between frame chunks.
    pub frame_gap: SimDuration,
    /// Mean gap between UI/compositor timer wakeups (X server, widget
    /// redraws, media timers). Zero disables the UI thread.
    pub ui_gap_mean: SimDuration,
    /// Mean CPU per UI wakeup.
    pub ui_work_mean: SimDuration,
}

impl Default for SlideshowConfig {
    fn default() -> Self {
        SlideshowConfig {
            think_mean: SimDuration::from_ms(1_100),
            burst_mean: SimDuration::from_ms(800),
            frame_chunk: SimDuration::from_ms(25),
            frame_gap: SimDuration::from_ms(4),
            ui_gap_mean: SimDuration::from_ms(15),
            ui_work_mean: SimDuration::ZERO,
        }
    }
}

struct SlideshowViewer {
    cfg: SlideshowConfig,
    rng: SimRng,
    /// CPU time left in the current decode burst (zero = thinking).
    burst_left: SimDuration,
    /// Next step is a frame gap (alternates with frame chunks).
    in_gap: bool,
}

impl ThreadProgram for SlideshowViewer {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        if self.burst_left.is_zero() {
            // Start thinking, then a fresh burst.
            let think = self
                .rng
                .exponential(self.cfg.think_mean.as_us_f64())
                .max(20_000.0);
            let burst = self
                .rng
                .exponential(self.cfg.burst_mean.as_us_f64())
                .max(100_000.0);
            self.burst_left = SimDuration::from_us_f64(burst);
            self.in_gap = false;
            return ThreadAction::Sleep(SimDuration::from_us_f64(think));
        }
        if self.in_gap {
            self.in_gap = false;
            return ThreadAction::Sleep(self.cfg.frame_gap);
        }
        // One frame chunk of the burst.
        let chunk = self.cfg.frame_chunk.min(self.burst_left);
        self.burst_left = self.burst_left.saturating_sub(chunk);
        self.in_gap = !self.burst_left.is_zero();
        ThreadAction::Compute(chunk)
    }

    fn label(&self) -> &str {
        "slideshow"
    }

    fn save_state(&self, w: &mut sim_core::snap::SnapWriter) {
        for s in self.rng.state() {
            w.u64(s);
        }
        w.dur(self.burst_left);
        w.bool(self.in_gap);
    }

    fn load_state(&mut self, r: &mut sim_core::snap::SnapReader<'_>) {
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = r.u64();
        }
        self.rng = SimRng::from_state(s);
        self.burst_left = r.dur();
        self.in_gap = r.bool();
    }
}

/// The interactive side of the desktop: UI timers and compositor work
/// waking every few milliseconds for a short burst. Each wake rides a
/// BOOST through the hypervisor, preempting whatever runs — the constant
/// millisecond-scale disruption co-located VMs inflict in practice.
struct UiTimers {
    cfg: SlideshowConfig,
    rng: SimRng,
    computing: bool,
}

impl ThreadProgram for UiTimers {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        self.computing = !self.computing;
        if self.computing {
            let work = self
                .rng
                .exponential(self.cfg.ui_work_mean.as_us_f64())
                .max(200.0);
            ThreadAction::Compute(SimDuration::from_us_f64(work))
        } else {
            let gap = self
                .rng
                .exponential(self.cfg.ui_gap_mean.as_us_f64())
                .max(3_000.0);
            ThreadAction::Sleep(SimDuration::from_us_f64(gap))
        }
    }

    fn label(&self) -> &str {
        "ui-timers"
    }

    fn save_state(&self, w: &mut sim_core::snap::SnapWriter) {
        for s in self.rng.state() {
            w.u64(s);
        }
        w.bool(self.computing);
    }

    fn load_state(&mut self, r: &mut sim_core::snap::SnapReader<'_>) {
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = r.u64();
        }
        self.rng = SimRng::from_state(s);
        self.computing = r.bool();
    }
}

/// Adds one 2-vCPU desktop VM running a slideshow (decode/render viewer
/// plus the interactive UI-timer side) and returns its domain.
pub fn add_desktop_vm<S: HypervisorSched>(m: &mut Machine<S>, cfg: SlideshowConfig) -> DomId {
    let dom = m.add_domain(DomainSpec::fixed(2));
    let mut seed_rng = m.rng.fork(0x6465_736b ^ dom.index() as u64);
    let guest = m.guest_mut(dom);
    let mut threads = Vec::new();
    for i in 0..2u64 {
        threads.push(guest.spawn(
            ThreadKind::User,
            Box::new(SlideshowViewer {
                cfg,
                rng: seed_rng.fork(i + 1),
                burst_left: SimDuration::ZERO,
                in_gap: false,
            }),
        ));
    }
    if !cfg.ui_work_mean.is_zero() {
        threads.push(guest.spawn(
            ThreadKind::User,
            Box::new(UiTimers {
                cfg,
                rng: seed_rng.fork(3),
                computing: false,
            }),
        ));
    }
    for t in threads {
        m.start_thread(dom, t);
    }
    dom
}

/// Adds `n` desktop VMs (the paper keeps ~2 vCPUs per pCPU by sizing this
/// count to the host).
pub fn add_desktops<S: HypervisorSched>(
    m: &mut Machine<S>,
    n: usize,
    cfg: SlideshowConfig,
) -> Vec<DomId> {
    (0..n).map(|_| add_desktop_vm(m, cfg)).collect()
}

/// The number of 2-vCPU background desktops needed to hold the paper's
/// 2:1 vCPU:pCPU overcommit given the test VM's size and the pool size.
pub fn desktops_for_overcommit(n_pcpus: usize, test_vm_vcpus: usize) -> usize {
    let target_vcpus = 2 * n_pcpus;
    target_vcpus.saturating_sub(test_vm_vcpus) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use vscale::config::MachineConfig;

    #[test]
    fn overcommit_sizing_matches_paper() {
        // 4-vCPU VM on 4 pCPUs: 2 desktops -> 8 vCPUs total = 2:1.
        assert_eq!(desktops_for_overcommit(4, 4), 2);
        // 8-vCPU VM on 4 pCPUs: already at 2:1 alone.
        assert_eq!(desktops_for_overcommit(4, 8), 0);
        // 8-vCPU VM on 8 pCPUs: 4 desktops.
        assert_eq!(desktops_for_overcommit(8, 8), 4);
    }

    #[test]
    fn slideshow_alternates_burst_and_sleep() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            ..MachineConfig::default()
        });
        let d = add_desktop_vm(&mut m, SlideshowConfig::default());
        m.run_until(SimTime::from_secs(20));
        let st = m.domain_stats(d);
        let used = st.run_total.as_secs_f64();
        // Two viewers at ~36% duty each over 20 s: 8-20 s of CPU, with
        // wide slack for randomness.
        assert!(used > 4.0, "desktop too idle: {used}s");
        assert!(used < 22.0, "desktop too busy: {used}s");
    }

    #[test]
    fn consumption_fluctuates_over_time() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            ..MachineConfig::default()
        });
        let d = add_desktop_vm(&mut m, SlideshowConfig::default());
        // Sample consumption over 1 s windows; spikes mean high variance.
        let mut samples = Vec::new();
        let mut last = SimDuration::ZERO;
        for i in 1..=20u64 {
            m.run_until(SimTime::from_secs(i));
            let total = m.domain_stats(d).run_total;
            samples.push((total - last).as_ms_f64());
            last = total;
        }
        let busy = samples.iter().filter(|&&s| s > 900.0).count();
        let idle = samples.iter().filter(|&&s| s < 500.0).count();
        assert!(busy >= 1, "no busy windows: {samples:?}");
        assert!(idle >= 1, "no idle windows: {samples:?}");
    }
}
