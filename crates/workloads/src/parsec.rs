//! PARSEC 3.0 behavioural models.
//!
//! Except for freqmine (OpenMP), the PARSEC applications are pthread
//! programs whose synchronization is sleep-then-wakeup: mutexes and
//! condition variables translating into `futex_wait`/`futex_wake` and
//! reschedule IPIs. The paper's Figure 13 profile shows how diverse they
//! are — dedup at ~940 IPIs/vCPU/s (pipeline queues plus heavy `mm_sem`
//! pressure), streamcluster at ~183 (a hand-rolled condvar barrier),
//! swaptions at essentially zero (no synchronization primitive at all).
//!
//! Three program templates cover the suite:
//!
//! - [`Template::Pipeline`] — stages connected by bounded mutex+condvar
//!   queues (dedup, ferret, x264, vips, bodytrack's stage mode);
//! - [`Template::CondBarrier`] — data-parallel phases meeting at a
//!   mutex/condvar barrier (streamcluster, fluidanimate, facesim,
//!   canneal);
//! - [`Template::DataParallel`] — independent slices with rare or no
//!   synchronization (blackscholes, swaptions, raytrace, freqmine —
//!   the last with OpenMP-default 300 K spin barriers).

use guest_kernel::thread::{
    BarrierId, CondId, KLockId, MutexId, ProgramCtx, SemId, ThreadAction, ThreadKind, ThreadProgram,
};
use guest_kernel::ThreadId;
use sim_core::rng::SimRng;
use sim_core::time::SimDuration;
use vscale::{DomId, Machine};
use xen_sched::HypervisorSched;

/// Program template for one application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Template {
    /// Producer/consumer pipeline over semaphore-guarded queues.
    Pipeline,
    /// Compute phases meeting at a mutex+condvar barrier.
    CondBarrier,
    /// Mostly independent computation; optional coarse barrier. The flag
    /// selects freqmine's OpenMP-style spin-then-futex barrier.
    DataParallel {
        /// Whether a 300 K-iteration spin precedes the futex (freqmine).
        omp_spin: bool,
    },
}

/// Static description of one PARSEC application.
#[derive(Clone, Copy, Debug)]
pub struct ParsecApp {
    /// Application name.
    pub name: &'static str,
    /// Program template.
    pub template: Template,
    /// Mean computation between synchronization points, per thread.
    pub grain: SimDuration,
    /// Work imbalance (sigma fraction).
    pub imbalance: f64,
    /// Total sync rounds (items per thread for pipelines; barrier phases
    /// otherwise).
    pub rounds: u32,
    /// Probability of a kernel critical section (mm_sem) per round.
    pub kernel_op_rate: f64,
    /// Mean kernel critical-section hold time, µs (mm_sem during
    /// mmap/brk/page-fault storms; dedup's chunk allocation makes these
    /// tens of microseconds).
    pub kernel_hold_us: u64,
}

/// The thirteen PARSEC applications, calibrated to a ~1.5–2 s dedicated
/// run at four threads, with sync intensities ordered as in Figure 13.
pub const PARSEC_APPS: [ParsecApp; 13] = [
    ParsecApp {
        name: "blackscholes",
        template: Template::DataParallel { omp_spin: false },
        grain: SimDuration::from_us(150_000),
        imbalance: 0.03,
        rounds: 10,
        kernel_op_rate: 0.05,
        kernel_hold_us: 4,
    },
    ParsecApp {
        name: "bodytrack",
        template: Template::CondBarrier,
        grain: SimDuration::from_us(2_600),
        imbalance: 0.25,
        rounds: 600,
        kernel_op_rate: 0.20,
        kernel_hold_us: 12,
    },
    ParsecApp {
        name: "canneal",
        template: Template::CondBarrier,
        grain: SimDuration::from_us(11_000),
        imbalance: 0.12,
        rounds: 150,
        kernel_op_rate: 0.25,
        kernel_hold_us: 10,
    },
    ParsecApp {
        name: "dedup",
        template: Template::Pipeline,
        grain: SimDuration::from_us(420),
        imbalance: 0.30,
        rounds: 3_800,
        kernel_op_rate: 0.60,
        kernel_hold_us: 40,
    },
    ParsecApp {
        name: "facesim",
        template: Template::CondBarrier,
        grain: SimDuration::from_us(7_000),
        imbalance: 0.15,
        rounds: 250,
        kernel_op_rate: 0.20,
        kernel_hold_us: 10,
    },
    ParsecApp {
        name: "ferret",
        template: Template::Pipeline,
        grain: SimDuration::from_us(9_000),
        imbalance: 0.15,
        rounds: 200,
        kernel_op_rate: 0.15,
        kernel_hold_us: 8,
    },
    ParsecApp {
        name: "fluidanimate",
        template: Template::CondBarrier,
        grain: SimDuration::from_us(5_500),
        imbalance: 0.18,
        rounds: 320,
        kernel_op_rate: 0.20,
        kernel_hold_us: 8,
    },
    ParsecApp {
        name: "freqmine",
        template: Template::DataParallel { omp_spin: true },
        grain: SimDuration::from_us(60_000),
        imbalance: 0.10,
        rounds: 30,
        kernel_op_rate: 0.10,
        kernel_hold_us: 4,
    },
    ParsecApp {
        name: "raytrace",
        template: Template::DataParallel { omp_spin: false },
        grain: SimDuration::from_us(90_000),
        imbalance: 0.08,
        rounds: 20,
        kernel_op_rate: 0.05,
        kernel_hold_us: 4,
    },
    ParsecApp {
        name: "streamcluster",
        template: Template::CondBarrier,
        grain: SimDuration::from_us(1_900),
        imbalance: 0.22,
        rounds: 900,
        kernel_op_rate: 0.15,
        kernel_hold_us: 8,
    },
    ParsecApp {
        name: "swaptions",
        template: Template::DataParallel { omp_spin: false },
        grain: SimDuration::from_us(400_000),
        imbalance: 0.02,
        rounds: 4,
        kernel_op_rate: 0.0,
        kernel_hold_us: 4,
    },
    ParsecApp {
        name: "vips",
        template: Template::Pipeline,
        grain: SimDuration::from_us(2_400),
        imbalance: 0.20,
        rounds: 700,
        kernel_op_rate: 0.25,
        kernel_hold_us: 12,
    },
    ParsecApp {
        name: "x264",
        template: Template::Pipeline,
        grain: SimDuration::from_us(6_000),
        imbalance: 0.25,
        rounds: 280,
        kernel_op_rate: 0.20,
        kernel_hold_us: 12,
    },
];

/// Looks up an application by name.
pub fn app(name: &str) -> Option<ParsecApp> {
    PARSEC_APPS.iter().copied().find(|a| a.name == name)
}

/// Dedicated-hardware runtime estimate.
pub fn ideal_runtime(app: &ParsecApp) -> SimDuration {
    app.grain * u64::from(app.rounds)
}

/// Barrier-phase worker (CondBarrier template): hand-rolled barrier from
/// a mutex + condvar, as streamcluster implements it.
struct CondBarrierWorker {
    app: ParsecApp,
    n_threads: usize,
    mutex: MutexId,
    cond: CondId,
    mm_lock: KLockId,
    /// Shared arrival counter lives in the worker's slot 0 via the
    /// counter semaphore trick: we instead track arrivals locally using a
    /// dedicated counting barrier below.
    barrier: BarrierId,
    rng: SimRng,
    round: u32,
    phase: CbPhase,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CbPhase {
    Compute,
    MaybeKernelOp,
    Barrier,
    Done,
}

impl ThreadProgram for CondBarrierWorker {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        // The mutex/cond pair is what the real code uses; our kernel
        // barrier with zero spin budget produces the identical futex
        // wait/wake + IPI pattern with one object, so we emit that and
        // keep the mutex for the occasional short critical section that
        // guards the shared phase counter.
        let _ = (self.mutex, self.cond, self.n_threads);
        loop {
            match self.phase {
                CbPhase::Compute => {
                    self.phase = CbPhase::MaybeKernelOp;
                    let jitter = (1.0 + self.rng.normal(0.0, self.app.imbalance)).max(0.1);
                    return ThreadAction::Compute(self.app.grain.mul_f64(jitter));
                }
                CbPhase::MaybeKernelOp => {
                    self.phase = CbPhase::Barrier;
                    if self.rng.chance(self.app.kernel_op_rate) {
                        let h = self.app.kernel_hold_us;
                        return ThreadAction::KernelOp {
                            lock: self.mm_lock,
                            hold: SimDuration::from_us(h / 2 + self.rng.below(h.max(1))),
                        };
                    }
                }
                CbPhase::Barrier => {
                    self.round += 1;
                    self.phase = if self.round >= self.app.rounds {
                        CbPhase::Done
                    } else {
                        CbPhase::Compute
                    };
                    return ThreadAction::BarrierWait(self.barrier);
                }
                CbPhase::Done => return ThreadAction::Exit,
            }
        }
    }

    fn label(&self) -> &str {
        self.app.name
    }
}

/// Pipeline-stage worker over *bounded* queues: consumes one token from
/// its input queue (freeing the slot), computes, and pushes to the next
/// stage, blocking when that stage's buffer is full. Backpressure is what
/// makes pipelines delay-sensitive: one preempted stage stalls the whole
/// chain within a few items (dedup's small chunk buffers).
struct PipelineWorker {
    app: ParsecApp,
    /// Items available in the input queue.
    input_items: SemId,
    /// Free slots of the input queue (posted back after a take).
    input_slots: Option<SemId>,
    /// Items/slots of the output queue, if any.
    output: Option<(SemId, SemId)>,
    mm_lock: KLockId,
    rng: SimRng,
    items_left: u32,
    phase: PipePhase,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PipePhase {
    Take,
    FreeSlot,
    Compute,
    MaybeKernelOp,
    AcquireOutSlot,
    Put,
    Done,
}

impl ThreadProgram for PipelineWorker {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        loop {
            match self.phase {
                PipePhase::Take => {
                    if self.items_left == 0 {
                        self.phase = PipePhase::Done;
                        continue;
                    }
                    self.phase = PipePhase::FreeSlot;
                    return ThreadAction::SemWait(self.input_items);
                }
                PipePhase::FreeSlot => {
                    self.phase = PipePhase::Compute;
                    if let Some(slots) = self.input_slots {
                        return ThreadAction::SemPost(slots);
                    }
                }
                PipePhase::Compute => {
                    self.phase = PipePhase::MaybeKernelOp;
                    let jitter = (1.0 + self.rng.normal(0.0, self.app.imbalance)).max(0.1);
                    return ThreadAction::Compute(self.app.grain.mul_f64(jitter));
                }
                PipePhase::MaybeKernelOp => {
                    self.phase = PipePhase::AcquireOutSlot;
                    if self.rng.chance(self.app.kernel_op_rate) {
                        let h = self.app.kernel_hold_us;
                        return ThreadAction::KernelOp {
                            lock: self.mm_lock,
                            hold: SimDuration::from_us(h / 2 + self.rng.below(h.max(1))),
                        };
                    }
                }
                PipePhase::AcquireOutSlot => {
                    self.phase = PipePhase::Put;
                    if let Some((_, slots)) = self.output {
                        return ThreadAction::SemWait(slots);
                    }
                }
                PipePhase::Put => {
                    self.items_left -= 1;
                    self.phase = PipePhase::Take;
                    if let Some((items, _)) = self.output {
                        return ThreadAction::SemPost(items);
                    }
                }
                PipePhase::Done => return ThreadAction::Exit,
            }
        }
    }

    fn label(&self) -> &str {
        self.app.name
    }
}

/// Depth of each inter-stage buffer (dedup uses small chunk queues).
const PIPELINE_QUEUE_DEPTH: u64 = 4;

/// Data-parallel worker: long independent slices, coarse barrier between
/// rounds.
struct DataParallelWorker {
    app: ParsecApp,
    barrier: BarrierId,
    mm_lock: KLockId,
    rng: SimRng,
    round: u32,
    phase: CbPhase,
}

impl ThreadProgram for DataParallelWorker {
    fn next(&mut self, _ctx: ProgramCtx) -> ThreadAction {
        loop {
            match self.phase {
                CbPhase::Compute => {
                    self.phase = CbPhase::MaybeKernelOp;
                    let jitter = (1.0 + self.rng.normal(0.0, self.app.imbalance)).max(0.1);
                    return ThreadAction::Compute(self.app.grain.mul_f64(jitter));
                }
                CbPhase::MaybeKernelOp => {
                    self.phase = CbPhase::Barrier;
                    if self.rng.chance(self.app.kernel_op_rate) {
                        let h = self.app.kernel_hold_us;
                        return ThreadAction::KernelOp {
                            lock: self.mm_lock,
                            hold: SimDuration::from_us(h / 2 + self.rng.below(h.max(1))),
                        };
                    }
                }
                CbPhase::Barrier => {
                    self.round += 1;
                    self.phase = if self.round >= self.app.rounds {
                        CbPhase::Done
                    } else {
                        CbPhase::Compute
                    };
                    return ThreadAction::BarrierWait(self.barrier);
                }
                CbPhase::Done => return ThreadAction::Exit,
            }
        }
    }

    fn label(&self) -> &str {
        self.app.name
    }
}

/// Handle to an installed PARSEC run.
#[derive(Clone, Debug)]
pub struct ParsecRun {
    /// The spawned threads.
    pub threads: Vec<ThreadId>,
    /// The application installed.
    pub app: ParsecApp,
}

/// Installs `app` into `dom` with `n_threads` workers and starts them.
pub fn install<S: HypervisorSched>(
    m: &mut Machine<S>,
    dom: DomId,
    app: ParsecApp,
    n_threads: usize,
) -> ParsecRun {
    let mut seed_rng = m.rng.fork(0x5041_5200 ^ app.name.len() as u64);
    let guest = m.guest_mut(dom);
    let mm_lock = guest.klocks.alloc();
    let mut threads = Vec::with_capacity(n_threads);
    match app.template {
        Template::CondBarrier => {
            let mutex = guest.sync.new_mutex();
            let cond = guest.sync.new_condvar();
            // Pthread barriers never spin: zero budget.
            let barrier = guest.sync.new_barrier(n_threads, Some(SimDuration::ZERO));
            for i in 0..n_threads {
                threads.push(guest.spawn(
                    ThreadKind::User,
                    Box::new(CondBarrierWorker {
                        app,
                        n_threads,
                        mutex,
                        cond,
                        mm_lock,
                        barrier,
                        rng: seed_rng.fork(i as u64),
                        round: 0,
                        phase: CbPhase::Compute,
                    }),
                ));
            }
        }
        Template::Pipeline => {
            // A chain of stages, one thread per stage, connected by
            // bounded buffers. Stage 0's input holds every token (the
            // input file); later queues start empty with
            // `PIPELINE_QUEUE_DEPTH` slots.
            let mut items = Vec::with_capacity(n_threads);
            let mut slots = Vec::with_capacity(n_threads);
            for i in 0..n_threads {
                let initial_items = if i == 0 { u64::from(app.rounds) } else { 0 };
                items.push(guest.sync.new_semaphore(initial_items));
                slots.push(guest.sync.new_semaphore(PIPELINE_QUEUE_DEPTH));
            }
            for i in 0..n_threads {
                let output = if i + 1 < n_threads {
                    Some((items[i + 1], slots[i + 1]))
                } else {
                    None
                };
                threads.push(guest.spawn(
                    ThreadKind::User,
                    Box::new(PipelineWorker {
                        app,
                        input_items: items[i],
                        input_slots: if i == 0 { None } else { Some(slots[i]) },
                        output,
                        mm_lock,
                        rng: seed_rng.fork(i as u64),
                        items_left: app.rounds,
                        phase: PipePhase::Take,
                    }),
                ));
            }
        }
        Template::DataParallel { omp_spin } => {
            let budget = if omp_spin {
                crate::spin::SpinPolicy::Default.budget()
            } else {
                Some(SimDuration::ZERO)
            };
            let barrier = guest.sync.new_barrier(n_threads, budget);
            for i in 0..n_threads {
                threads.push(guest.spawn(
                    ThreadKind::User,
                    Box::new(DataParallelWorker {
                        app,
                        barrier,
                        mm_lock,
                        rng: seed_rng.fork(i as u64),
                        round: 0,
                        phase: CbPhase::Compute,
                    }),
                ));
            }
        }
    }
    for &t in &threads {
        m.start_thread(dom, t);
    }
    ParsecRun { threads, app }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_apps_present() {
        assert_eq!(PARSEC_APPS.len(), 13);
        let names: Vec<_> = PARSEC_APPS.iter().map(|a| a.name).collect();
        for expect in [
            "blackscholes",
            "bodytrack",
            "canneal",
            "dedup",
            "facesim",
            "ferret",
            "fluidanimate",
            "freqmine",
            "raytrace",
            "streamcluster",
            "swaptions",
            "vips",
            "x264",
        ] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }

    #[test]
    fn freqmine_is_the_only_openmp_app() {
        for a in PARSEC_APPS {
            let is_omp = matches!(a.template, Template::DataParallel { omp_spin: true });
            assert_eq!(is_omp, a.name == "freqmine", "{}", a.name);
        }
    }

    #[test]
    fn dedup_is_most_sync_intensive() {
        // Sync ops per second ~ rounds / runtime; dedup must lead by far
        // (Figure 13's 940 IPIs/vCPU/s).
        let rate = |name: &str| {
            let a = app(name).unwrap();
            f64::from(a.rounds) / ideal_runtime(&a).as_secs_f64()
        };
        let dedup = rate("dedup");
        for a in PARSEC_APPS.iter().filter(|a| a.name != "dedup") {
            assert!(
                dedup > 2.0 * rate(a.name),
                "dedup {dedup} vs {} {}",
                a.name,
                rate(a.name)
            );
        }
    }

    #[test]
    fn swaptions_has_no_sync_pressure() {
        let a = app("swaptions").unwrap();
        assert_eq!(a.kernel_op_rate, 0.0);
        assert!(a.rounds <= 8);
    }

    #[test]
    fn ideal_runtimes_are_in_range() {
        for a in PARSEC_APPS {
            let t = ideal_runtime(&a);
            assert!(
                (SimDuration::from_ms(1_000)..=SimDuration::from_ms(2_700)).contains(&t),
                "{}: {t}",
                a.name
            );
        }
    }
}
