//! Workload models for the vScale evaluation.
//!
//! Each module reproduces the *behavioural signature* of one workload from
//! the paper's §5.2 — its computation granularity, synchronization style
//! and intensity, kernel-lock usage and I/O profile — which is what
//! determines how it reacts to vCPU scheduling delays:
//!
//! - [`spin`] — the OpenMP `GOMP_SPINCOUNT` policy mapping (30 G / 300 K /
//!   0 spin iterations before futex).
//! - [`npb`] — the ten NAS Parallel Benchmarks (OpenMP): barrier-iterative
//!   kernels, with lu's ad-hoc always-busy-wait synchronization.
//! - [`parsec`] — the thirteen PARSEC applications (pthread): pipeline
//!   (dedup, ferret, x264, vips), condvar-barrier (streamcluster,
//!   bodytrack, fluidanimate, facesim, canneal) and data-parallel
//!   (blackscholes, swaptions, raytrace, freqmine) templates.
//! - [`apache`] — Apache httpd workers serving a 16 KB file, driven by an
//!   httperf-style constant-rate client over a 1 GbE link.
//! - [`kbuild`] — parallel kernel-build (the Table 2 workload).
//! - [`desktop`] — the "photo-slideshow" virtual-desktop background VMs
//!   that generate the fluctuating competing load of §5.2.1.
//! - [`adaptive`] — the paper's §7 future work: an application that sizes
//!   its work split from the VM's vScale-exported effective parallelism.
//! - [`antagonist`] — adversarial tenants: the four scheduler-attack
//!   workloads (tick evasion, BOOST farming, IPI storms, extendability
//!   oscillation) and their benign twins, for the attack-impact grid.

pub mod adaptive;
pub mod antagonist;
pub mod apache;
pub mod desktop;
pub mod kbuild;
pub mod npb;
pub mod parsec;
pub mod spin;
pub mod traces;

pub use antagonist::{AntagonistMode, AntagonistSpec, AttackKind};
pub use spin::SpinPolicy;
pub use traces::{RateTrace, TraceSampler};
