//! Machine and domain configuration.

use guest_kernel::{GuestConfig, HotplugRetryPolicy};
use sim_core::time::SimDuration;
use xen_sched::channel::RetransmitPolicy;
use xen_sched::CreditConfig;

use crate::daemon::DaemonConfig;

/// How a domain adapts its active vCPU count.
#[derive(Clone, Debug)]
pub enum ScalingMode {
    /// Fixed vCPU count (the vanilla Xen/Linux baseline).
    Fixed,
    /// vScale: daemon + channel + balancer (Algorithms 1 and 2).
    VScale(DaemonConfig),
    /// The same monitoring loop driving Linux CPU hotplug — the
    /// VCPU-Bal-style baseline mechanism.
    Hotplug {
        /// Daemon parameters (monitoring cadence).
        daemon: DaemonConfig,
        /// Which kernel version's hotplug latency to model.
        version: guest_kernel::KernelVersion,
    },
    /// VCPU-Bal's *policy* over vScale's mechanism: the target vCPU count
    /// considers only the VM's weight (its fair share), never its or its
    /// neighbours' consumption — the non-work-conserving sizing the paper
    /// criticises in §2.3. Ablation mode.
    VcpuBal(DaemonConfig),
}

/// Host-level configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of pCPUs in the domU pool (dom0 runs on dedicated cores
    /// outside the pool, as in the paper's testbed).
    pub n_pcpus: usize,
    /// Credit-scheduler parameters.
    pub credit: CreditConfig,
    /// Root RNG seed.
    pub seed: u64,
    /// Latency of a virtual IPI between two running vCPUs.
    pub ipi_latency: SimDuration,
    /// NIC line rate in bits per second (paper: 1 GbE).
    pub nic_bps: u64,
    /// Self-healing knobs: retransmit, retry, heartbeat, and hotplug
    /// backoff parameters of the recovery protocols.
    pub recovery: RecoveryConfig,
    /// Scheduler-attack defenses. All off by default: the defaults
    /// reproduce the paper's (attackable) behavior byte for byte.
    pub defense: DefenseConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_pcpus: 4,
            credit: CreditConfig::default(),
            seed: 0x5ca1e,
            ipi_latency: SimDuration::from_us(5),
            nic_bps: 1_000_000_000,
            recovery: RecoveryConfig::default(),
            defense: DefenseConfig::default(),
        }
    }
}

/// Config-gated defenses against scheduler attacks (Zhou et al.,
/// "Scheduler Vulnerabilities and Attacks in Cloud Computing").
///
/// Each knob is independently toggleable so the attack grid can measure
/// one defense at a time. Everything defaults to *off*; with the default
/// `DefenseConfig` a run is byte-identical to a build that predates the
/// defenses (guarded by the golden trace checksums in
/// `tests/determinism.rs` and `tests/layout_equivalence.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DefenseConfig {
    /// Charge exact run nanoseconds instead of sampled ticks. Counters
    /// tick-evasion theft. Only meaningful when the credit backend runs
    /// in its Xen-faithful sampled-accounting mode
    /// (`CreditConfig::sampled_burn`); forces that flag off.
    pub exact_burn: bool,
    /// Randomize each hypervisor-tick interval within ±25% of the
    /// nominal period (mean preserved), drawn from a dedicated RNG
    /// derived from the run seed — never ambient entropy, so jittered
    /// runs still replay bit-identically at any `VSCALE_THREADS`.
    /// Counters attacks that phase-lock to the accounting sample.
    pub tick_jitter: bool,
    /// Rate-limit kick-path preemption: a directed wake may not evict a
    /// current occupant that has run for less than the scheduler's
    /// ratelimit. Counters IPI-storm preemption farming. Applies to all
    /// three backends.
    pub kick_throttle: bool,
    /// Freeze-rate hysteresis in the guest balancer: after a
    /// grow/shrink reconfiguration, suppress further reconfigurations
    /// for this many daemon periods (0 disables). Counters
    /// extendability-oscillation attacks that thrash freeze/unfreeze.
    pub freeze_dwell: u32,
}

impl DefenseConfig {
    /// Every defense enabled, with the documented default dwell.
    pub fn all_on() -> Self {
        DefenseConfig {
            exact_burn: true,
            tick_jitter: true,
            kick_throttle: true,
            freeze_dwell: 8,
        }
    }

    /// True when any defense is active.
    pub fn any(&self) -> bool {
        self.exact_burn || self.tick_jitter || self.kick_throttle || self.freeze_dwell > 0
    }
}

/// Parameters of the recovery protocols layered over fault injection.
///
/// Every bound here trades detection latency against overhead under a
/// healthy system; the defaults keep the fault-free figures untouched
/// (nothing fires without an injected fault or a genuinely silent daemon)
/// while bounding worst-case staleness under sustained injection.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// Doorbell retransmit timer: RTO, backoff cap, attempt budget. The
    /// default ladder (0.5 + 1 + 2 + 2 ms) resolves a fully dropped
    /// doorbell well inside the injector's 10 ms re-scan bound.
    pub retransmit: RetransmitPolicy,
    /// Extra channel-read attempts after a torn/stale serve before the
    /// daemon falls back to the last-good snapshot.
    pub read_retry_budget: u32,
    /// Daemon periods without a valid extendability update before the
    /// balancer's fail-safe unfreezes every vCPU (0 disables). 12 periods
    /// = 120 ms at the default 10 ms cadence: far above the worst
    /// contention-induced gap observed fault-free, far below a human
    /// noticing a wedged daemon.
    pub heartbeat_ticks: u32,
    /// Backoff between retries of aborted hotplug removals.
    pub hotplug_retry: HotplugRetryPolicy,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            retransmit: RetransmitPolicy::default(),
            read_retry_budget: 2,
            heartbeat_ticks: 12,
            hotplug_retry: HotplugRetryPolicy::default(),
        }
    }
}

/// Per-domain configuration.
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Proportional-share weight.
    pub weight: u32,
    /// Guest kernel configuration (vCPU count, costs, pv-spinlock).
    pub guest: GuestConfig,
    /// vCPU scaling mode.
    pub scaling: ScalingMode,
    /// Optional consumption cap, in pCPUs.
    pub cap_pcpus: Option<f64>,
    /// Optional reservation, in pCPUs.
    pub reservation_pcpus: Option<f64>,
}

impl DomainSpec {
    /// A fixed-size SMP domain with default weight.
    pub fn fixed(n_vcpus: usize) -> Self {
        DomainSpec {
            weight: 256,
            guest: GuestConfig::new(n_vcpus),
            scaling: ScalingMode::Fixed,
            cap_pcpus: None,
            reservation_pcpus: None,
        }
    }

    /// A vScale-managed SMP domain with default daemon settings.
    pub fn vscale(n_vcpus: usize) -> Self {
        DomainSpec {
            scaling: ScalingMode::VScale(DaemonConfig::default()),
            ..DomainSpec::fixed(n_vcpus)
        }
    }

    /// Enables the guest's pv-spinlock.
    pub fn with_pv_spinlock(mut self) -> Self {
        self.guest = self.guest.with_pv_spinlock();
        self
    }

    /// Sets the proportional-share weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// The scheduler-policy axis of the figure grids: which
/// `HypervisorSched` backend the hypervisor runs. The paper evaluates
/// against Xen's credit scheduler only; the other two backends probe how
/// much of vScale's benefit is policy-independent. This is a runtime tag
/// — `Machine` is generic over the backend at compile time, so consumers
/// match on it to pick a monomorphized experiment function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedBackend {
    /// Xen's credit scheduler with the §4.2 modification (the paper's).
    Credit,
    /// Credit2-style per-pCPU runqueues with credit-reset epochs.
    Credit2,
    /// Dynamic-fractional continuous shares (à la Casanova et al.).
    DynFrac,
}

impl SchedBackend {
    /// All backends, credit (the reference) first.
    pub const ALL: [SchedBackend; 3] = [
        SchedBackend::Credit,
        SchedBackend::Credit2,
        SchedBackend::DynFrac,
    ];

    /// Stable short name, matching `HypervisorSched::backend_name`.
    pub fn label(self) -> &'static str {
        match self {
            SchedBackend::Credit => "credit",
            SchedBackend::Credit2 => "credit2",
            SchedBackend::DynFrac => "dynfrac",
        }
    }
}

/// The four comparison configurations of the paper's §5.2 experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemConfig {
    /// Vanilla Xen/Linux.
    Baseline,
    /// Xen/Linux with pv-spinlock.
    Pvlock,
    /// vScale.
    VScale,
    /// vScale with pv-spinlock.
    VScalePvlock,
}

impl SystemConfig {
    /// All four configurations, in the paper's legend order.
    pub const ALL: [SystemConfig; 4] = [
        SystemConfig::Baseline,
        SystemConfig::Pvlock,
        SystemConfig::VScale,
        SystemConfig::VScalePvlock,
    ];

    /// The paper's legend label.
    pub fn label(self) -> &'static str {
        match self {
            SystemConfig::Baseline => "Xen/Linux",
            SystemConfig::Pvlock => "Xen/Linux + pvlock",
            SystemConfig::VScale => "vScale",
            SystemConfig::VScalePvlock => "vScale + pvlock",
        }
    }

    /// Whether vScale's daemon/balancer runs.
    pub fn vscale(self) -> bool {
        matches!(self, SystemConfig::VScale | SystemConfig::VScalePvlock)
    }

    /// Whether the guest uses pv-spinlock.
    pub fn pvlock(self) -> bool {
        matches!(self, SystemConfig::Pvlock | SystemConfig::VScalePvlock)
    }

    /// Builds a [`DomainSpec`] for an `n_vcpus` test VM under this
    /// configuration.
    pub fn domain_spec(self, n_vcpus: usize) -> DomainSpec {
        let mut spec = if self.vscale() {
            DomainSpec::vscale(n_vcpus)
        } else {
            DomainSpec::fixed(n_vcpus)
        };
        if self.pvlock() {
            spec = spec.with_pv_spinlock();
        }
        spec
    }
}

/// Thresholds of the fleet autoscaler's SLO feedback controller
/// (`crates/autoscale`). Lives here, next to the other policy knobs,
/// so experiment grids can sweep controller aggressiveness the same way
/// they sweep scheduler policy. All smoothing and comparison runs on
/// the controller's sampled windows — nothing here touches the
/// machine-level hot path, so an idle controller costs nothing.
///
/// The shape follows the adaptive-allocation feedback template:
/// measure (windowed p99 / throughput / queue depth), filter (EMA),
/// actuate with hysteresis (consecutive-sample dwell) and a cooldown
/// that covers the actuator's own settling time (a live migration takes
/// several epochs to cut over; reacting to mid-migration samples would
/// double-fire).
#[derive(Clone, Copy, Debug)]
pub struct ElasticConfig {
    /// The fleet-p99 target, µs. Scale-out pressure builds while the
    /// smoothed p99 exceeds `scale_out_ratio` of this.
    pub slo_p99_us: u64,
    /// Controller sampling period (also the SLO-window width).
    pub sample_period: SimDuration,
    /// EMA weight of the newest sample, in (0, 1].
    pub ema_alpha: f64,
    /// Scale out when `ema_p99 > scale_out_ratio * slo_p99_us` for
    /// `scale_out_dwell` consecutive samples.
    pub scale_out_ratio: f64,
    /// Scale in only while `ema_p99 < scale_in_ratio * slo_p99_us` …
    pub scale_in_ratio: f64,
    /// … *and* the smoothed fleet throughput fits on one fewer host at
    /// `scale_in_util` of the per-host capacity estimate.
    pub scale_in_util: f64,
    /// Operator estimate of one host's comfortable capacity, req/s.
    pub per_host_rps: f64,
    /// Queue-depth escape hatch: scale out immediately (dwell still
    /// applies) when in-flight requests exceed this many per host.
    pub queue_depth_per_host: u64,
    /// Consecutive breach samples before scale-out fires.
    pub scale_out_dwell: u32,
    /// Consecutive idle samples before scale-in fires.
    pub scale_in_dwell: u32,
    /// Dead time after any action before the next may fire.
    pub cooldown: SimDuration,
    /// The controller never drains below this many in-service hosts.
    pub min_hosts: usize,
    /// … and never activates beyond this many.
    pub max_hosts: usize,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            slo_p99_us: 10_000,
            sample_period: SimDuration::from_ms(20),
            ema_alpha: 0.35,
            scale_out_ratio: 0.8,
            scale_in_ratio: 0.4,
            scale_in_util: 0.6,
            per_host_rps: 7_000.0,
            queue_depth_per_host: 96,
            scale_out_dwell: 2,
            scale_in_dwell: 8,
            cooldown: SimDuration::from_ms(150),
            min_hosts: 1,
            max_hosts: usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_config_flags() {
        assert!(!SystemConfig::Baseline.vscale());
        assert!(!SystemConfig::Baseline.pvlock());
        assert!(SystemConfig::Pvlock.pvlock());
        assert!(SystemConfig::VScale.vscale());
        assert!(SystemConfig::VScalePvlock.vscale());
        assert!(SystemConfig::VScalePvlock.pvlock());
    }

    #[test]
    fn domain_spec_builders() {
        let spec = SystemConfig::VScalePvlock.domain_spec(4);
        assert!(matches!(spec.scaling, ScalingMode::VScale(_)));
        assert!(matches!(
            spec.guest.klock_policy,
            guest_kernel::KlockPolicy::PvSpinThenYield { .. }
        ));
        let spec = SystemConfig::Baseline.domain_spec(8);
        assert!(matches!(spec.scaling, ScalingMode::Fixed));
        assert_eq!(spec.guest.n_vcpus, 8);
    }

    #[test]
    fn defense_defaults_are_all_off() {
        let d = DefenseConfig::default();
        assert!(!d.any());
        assert!(!d.exact_burn && !d.tick_jitter && !d.kick_throttle);
        assert_eq!(d.freeze_dwell, 0);
        assert!(DefenseConfig::all_on().any());
        assert!(DefenseConfig {
            freeze_dwell: 1,
            ..DefenseConfig::default()
        }
        .any());
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(SystemConfig::Baseline.label(), "Xen/Linux");
        assert_eq!(SystemConfig::VScalePvlock.label(), "vScale + pvlock");
    }
}
