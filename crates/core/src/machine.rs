//! The machine: a host running the hypervisor and one guest per domain.
//!
//! [`Machine`] owns global simulated time (one [`EventQueue`]), the credit
//! scheduler, every guest kernel, a virtual NIC, and the per-domain vScale
//! (or hotplug) daemon. It is the component that turns the two passive
//! layers into a running system, with the cross-layer routing rules:
//!
//! - **pCPU grants** — hypervisor [`SchedEvent`]s start/stop guest vCPUs
//!   and (re)arm per-pCPU slice-expiry events;
//! - **reschedule IPIs** — delivered after a small latency when the target
//!   vCPU is running, otherwise the target is woken through the hypervisor
//!   (BOOST) and the IPI is handled when it next gets a pCPU — this is the
//!   paper's Figure 1(b) delay;
//! - **device interrupts** — arrive at the event-channel port's bound
//!   vCPU; if that vCPU is frozen the interrupt is rebound on occurrence
//!   (Algorithm 2 step (c)); if it is off-pCPU the interrupt waits for the
//!   hypervisor — Figure 1(c);
//! - **busy-waiting** — spinning threads simply burn their vCPU's slices;
//!   preempted lock holders stall them — Figure 1(a);
//! - **the daemon** — timer-driven monitoring whose work is charged on
//!   vCPU0 and whose decisions drive Algorithm 2 (or the hotplug baseline).

use std::collections::VecDeque;
use std::fmt::Write as _;

use guest_kernel::kernel::GuestEffect;
use guest_kernel::thread::IoQueueId;
use guest_kernel::{
    FailSafe, FreezeRateGate, GuestKernel, HotplugModel, HotplugRetry, ThreadId, VcpuId,
};
use sim_core::event::{EventHandle, EventQueue};
use sim_core::fault::{
    ChannelReadFault, DeliveryFault, Diagnostics, FaultConfig, FaultPlan, FaultStats, SimError,
    SimErrorKind, WatchdogConfig,
};
use sim_core::ids::{DomId, GlobalVcpu, PcpuId};
use sim_core::rng::SimRng;
use sim_core::snap::{SnapReader, SnapWriter};
use sim_core::soa::VcpuMap;
use sim_core::time::{SimDuration, SimTime};
use sim_core::trace::{TraceEvent, TraceRing};
use xen_sched::api::{DomSchedExport, HypervisorSched, VcpuSchedExport};
use xen_sched::channel::{ChannelCosts, DoorbellLink, VscaleChannel};
use xen_sched::credit::{CreditScheduler, SchedEvent};
use xen_sched::evtchn::{EvtchnTable, PortId, PortKind};

use crate::config::{DomainSpec, MachineConfig, ScalingMode};
use crate::daemon::{
    DaemonPhase, DaemonState, TAG_FREEZE_BASE, TAG_HOTPLUG_BASE, TAG_READ, TAG_UNFREEZE_BASE,
};

/// Index of a wide (`u64`) payload word parked in the machine's
/// [`WidePool`] side table while its event is in flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct WideIdx(u32);

/// Side table interning the wide (`u64`) payload words of machine events
/// — slice generations, arrival batch sizes, doorbell sequence numbers —
/// so [`Ev`] itself stays within the 16-byte budget that keeps an
/// event-queue slab node inside one cache line. A slot is claimed at
/// schedule time and released exactly once: when the event fires, or at
/// the eager cancel of a retransmit timer. The free list keeps the
/// steady state allocation-free.
#[derive(Clone, Debug, Default)]
struct WidePool {
    slots: Vec<u64>,
    free: Vec<WideIdx>,
}

impl WidePool {
    /// Parks `val`, reusing a freed slot when one exists.
    fn intern(&mut self, val: u64) -> WideIdx {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx.0 as usize] = val;
                idx
            }
            None => {
                let idx = WideIdx(u32::try_from(self.slots.len()).expect("wide pool overflow"));
                self.slots.push(val);
                idx
            }
        }
    }

    /// Reads a slot and releases it back to the free list.
    fn take(&mut self, idx: WideIdx) -> u64 {
        self.free.push(idx);
        self.slots[idx.0 as usize]
    }
}

/// Machine-level events, compacted to 16 bytes: dense ids travel as raw
/// `u32` (re-typed at the top of the dispatch arm) and the rare wide
/// `u64` payload words ride the [`WidePool`] side table. Together with
/// the wheel's per-node bookkeeping this keeps every slab node within a
/// single 64-byte cache line (asserted below).
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Hypervisor per-pCPU tick (10 ms).
    HvTick(u32),
    /// Hypervisor accounting pass (30 ms).
    HvAcct,
    /// vScale extendability ticker (10 ms).
    ExtendTick,
    /// End of a scheduling quantum; stale if the pCPU's generation moved.
    SliceEnd { pcpu: u32, gen: WideIdx },
    /// A guest vCPU's next local event (cancellable).
    Plan { dom: u32, vcpu: u32 },
    /// A reschedule IPI lands on a (hopefully still running) vCPU.
    IpiDeliver { dom: u32, vcpu: u32 },
    /// A sleeping thread's timer fires.
    SleepWake { dom: u32, tid: u32 },
    /// The daemon's polling timer.
    DaemonTimer { dom: u32 },
    /// An external I/O event (e.g. a network request) arrives at a port.
    IoArrival { dom: u32, port: u32, items: WideIdx },
    /// A NIC transmission completes.
    NicDrained { dom: u32 },
    /// The non-stall part of a hotplug operation finishes.
    HotplugDone { dom: u32, vcpu: u32, online: bool },
    /// The guest's periodic re-scan notices a still-pending port whose
    /// doorbell was injected away (dropped or delayed), or a spurious
    /// duplicate doorbell rings. Only scheduled by an active fault plan.
    PortRecover { dom: u32, port: u32 },
    /// The doorbell ack timeout for sequence `seq` of `port` fired: if the
    /// sequence is still outstanding, re-ring the doorbell (the retransmit
    /// itself subject to injection) and advance the backoff ladder. Only
    /// scheduled by an active fault plan; cancelled eagerly on ack.
    Retransmit { dom: u32, port: u32, seq: WideIdx },
    /// An aborted hotplug removal unwinds out of `stop_machine`: the
    /// partial stall ends and the target vCPU stays online.
    HotplugAborted { dom: u32 },
}

/// One-cache-line budget: the payload stays at 16 bytes and the whole
/// slab node (payload + time/seq/generation/level bookkeeping) fits in
/// a single 64-byte line.
const _: () = assert!(std::mem::size_of::<Ev>() <= 16);
const _: () = assert!(EventQueue::<Ev>::node_footprint() <= 64);

/// Narrows a dense index for the compact [`Ev`] representation.
#[inline]
fn compact(i: usize) -> u32 {
    debug_assert!(i <= u32::MAX as usize, "dense index exceeds u32");
    i as u32
}

/// Typed constructors: the one place the `usize`-backed id types narrow
/// into the compact wire form. Dispatch arms do the inverse re-typing.
impl Ev {
    fn hv_tick(p: PcpuId) -> Ev {
        Ev::HvTick(compact(p.index()))
    }
    fn slice_end(pcpu: PcpuId, gen: WideIdx) -> Ev {
        Ev::SliceEnd {
            pcpu: compact(pcpu.index()),
            gen,
        }
    }
    fn plan(dom: DomId, vcpu: VcpuId) -> Ev {
        Ev::Plan {
            dom: compact(dom.index()),
            vcpu: compact(vcpu.index()),
        }
    }
    fn ipi_deliver(dom: DomId, vcpu: VcpuId) -> Ev {
        Ev::IpiDeliver {
            dom: compact(dom.index()),
            vcpu: compact(vcpu.index()),
        }
    }
    fn sleep_wake(dom: DomId, tid: ThreadId) -> Ev {
        Ev::SleepWake {
            dom: compact(dom.index()),
            tid: compact(tid.index()),
        }
    }
    fn daemon_timer(dom: DomId) -> Ev {
        Ev::DaemonTimer {
            dom: compact(dom.index()),
        }
    }
    fn io_arrival(dom: DomId, port: PortId, items: WideIdx) -> Ev {
        Ev::IoArrival {
            dom: compact(dom.index()),
            port: compact(port.0),
            items,
        }
    }
    fn nic_drained(dom: DomId) -> Ev {
        Ev::NicDrained {
            dom: compact(dom.index()),
        }
    }
    fn hotplug_done(dom: DomId, vcpu: VcpuId, online: bool) -> Ev {
        Ev::HotplugDone {
            dom: compact(dom.index()),
            vcpu: compact(vcpu.index()),
            online,
        }
    }
    fn port_recover(dom: DomId, port: PortId) -> Ev {
        Ev::PortRecover {
            dom: compact(dom.index()),
            port: compact(port.0),
        }
    }
    fn retransmit(dom: DomId, port: PortId, seq: WideIdx) -> Ev {
        Ev::Retransmit {
            dom: compact(dom.index()),
            port: compact(port.0),
            seq,
        }
    }
    fn hotplug_aborted(dom: DomId) -> Ev {
        Ev::HotplugAborted {
            dom: compact(dom.index()),
        }
    }
}

/// Seed salt of the tick-jitter defense RNG: the jitter stream must be
/// independent of the root `rng` (whose draw order golden traces pin)
/// yet fully determined by the run seed.
const TICK_JITTER_SALT: u64 = 0x7e11_ba5e_0ff5_e751;

/// Draws one randomized tick interval in `[¾·tick, 1¼·tick)`. The mean
/// stays at `tick`, so the long-run accounting cadence is unchanged,
/// while a tenant can no longer phase-lock to the next sample point.
fn jittered_interval(tick: SimDuration, rng: &mut SimRng) -> SimDuration {
    let ns = tick.as_ns();
    let span = (ns / 2).max(1);
    SimDuration::from_ns(ns - ns / 4 + rng.next_u64() % span)
}

/// A unit of routing work inside one event's processing.
enum Op {
    Sched(SchedEvent),
    Guest(DomId, GuestEffect),
}

/// Per-domain aggregate statistics gathered during a run.
#[derive(Clone, Debug, Default)]
pub struct DomainStats {
    /// Total vCPU waiting time in hypervisor run queues (Figure 9).
    pub wait_total: SimDuration,
    /// Total vCPU run time.
    pub run_total: SimDuration,
    /// Reschedule IPIs delivered, per vCPU.
    pub resched_ipis: Vec<u64>,
    /// Timer interrupts delivered, per vCPU.
    pub timer_ints: Vec<u64>,
    /// Channel reads the daemon performed.
    pub daemon_reads: u64,
    /// Freeze/unfreeze (or hotplug) operations completed.
    pub reconfigs: u64,
    /// Daemon crash-restarts survived (injected faults).
    pub daemon_crashes: u64,
    /// Channel reads the daemon discarded (torn snapshots, orphaned
    /// replies to a crashed daemon incarnation).
    pub discarded_reads: u64,
    /// Hotplug removals that aborted mid-`stop_machine`.
    pub hotplug_aborts: u64,
    // --- recovery-protocol counters (self-healing layer) ---
    /// Doorbell retransmit rings issued by the seq/ack protocol.
    pub retransmits: u64,
    /// Doorbell sequences resolved by an acknowledged delivery or wake.
    pub doorbell_acks: u64,
    /// Spurious doorbell rings (duplicates, late retransmits) suppressed
    /// idempotently via the pending bit.
    pub dup_suppressed: u64,
    /// Doorbell sequences abandoned after the retransmit budget ran out
    /// (recovery handed to the periodic re-scan).
    pub retransmit_exhausted: u64,
    /// Channel re-reads after a detected torn/stale serve.
    pub read_retries: u64,
    /// Channel reads that exhausted the retry budget and served the
    /// last-good snapshot.
    pub read_fallbacks: u64,
    /// Crash-restart freeze-mask resynchronizations performed.
    pub resyncs: u64,
    /// Freeze-state mismatches repaired by those resyncs.
    pub resync_repairs: u64,
    /// Balancer fail-safe trips (daemon heartbeat timeouts that unfroze
    /// every vCPU).
    pub failsafe_trips: u64,
    /// Aborted hotplug removals rescheduled with backoff.
    pub hotplug_retries: u64,
    /// Hotplug removal cycles abandoned after the abort budget ran out.
    pub hotplug_giveups: u64,
    /// Same-target reschedule IPIs coalesced within one dispatch.
    pub ipis_coalesced: u64,
    // --- adversarial-tenant instrumentation (attack grid) ---
    /// Estimated run time taken beyond the domain's weight-fair share of
    /// the elapsed pool capacity. An attribution *heuristic*, not an
    /// accusation: a work-conserving scheduler legitimately hands idle
    /// capacity to whoever wants it, so a large value only indicts a
    /// domain when contending neighbors were starved at the same time
    /// (which is exactly how the attack grid reads it).
    pub stolen_est: SimDuration,
    /// Kick-path evictions suppressed by the kick-throttle defense for
    /// kicks aimed at this domain's vCPUs (defense-activity counter).
    pub kicks_throttled: u64,
    /// Grow/shrink reconfigurations suppressed by the freeze-rate
    /// hysteresis gate (defense-activity counter).
    pub reconfigs_suppressed: u64,
}

struct GuestDomain {
    kernel: GuestKernel,
    evtchn: EvtchnTable,
    /// Accumulated payload per port, delivered with the interrupt.
    port_pending: Vec<(IoQueueId, u64)>,
    scaling: ScalingMode,
    daemon: DaemonState,
    /// The per-domain vScale mailbox endpoint the daemon reads through.
    channel: VscaleChannel,
    hotplug: Option<HotplugModel>,
    /// (time, active vCPUs) trace for Figure 8.
    active_trace: Vec<(SimTime, usize)>,
    /// I/O request arrival times (client-side record).
    io_arrivals: Vec<SimTime>,
    /// Times each request's interrupt reached a handler (≈ accept).
    io_deliveries: Vec<SimTime>,
    /// Times each reply finished serializing onto the wire.
    nic_completions: Vec<SimTime>,
    /// NIC transmit queue occupancy.
    nic_busy_until: SimTime,
    nic_seq: u64,
    exited_threads: u64,
    /// Seq/ack doorbell state per port (parallel to `port_pending`).
    doorbells: Vec<DoorbellLink>,
    /// Pending retransmit-timer handle per port plus the wide-pool slot
    /// of its interned sequence number, cancelled (and the slot freed)
    /// eagerly on ack.
    retx_handles: Vec<Option<(EventHandle, WideIdx)>>,
    /// The balancer's heartbeat watchdog on the daemon.
    failsafe: FailSafe,
    /// Backoff state for aborted hotplug removals.
    hotplug_retry: HotplugRetry,
    /// Same-target reschedule IPIs coalesced within one dispatch.
    ipis_coalesced: u64,
    /// Freeze-rate hysteresis gate (the oscillation defense; inert at
    /// the default `DefenseConfig::freeze_dwell == 0`).
    freeze_gate: FreezeRateGate,
    /// Proportional-share weight (for the stolen-time attribution).
    weight: u32,
}

/// The composed host, generic over the scheduler policy `S` (the
/// [`HypervisorSched`] backend; defaults to the paper's credit
/// scheduler, so `Machine::new` keeps its historical meaning).
pub struct Machine<S: HypervisorSched = CreditScheduler> {
    config: MachineConfig,
    hv: S,
    guests: Vec<GuestDomain>,
    queue: EventQueue<Ev>,
    /// Root RNG (workloads fork children from it).
    pub rng: SimRng,
    /// Cancellable plan handle per (domain, vCPU), in the same dense
    /// struct-of-arrays layout as the schedulers' hot state.
    plan_handles: VcpuMap<Option<EventHandle>>,
    /// Side table parking the wide payload words of in-flight events.
    wide: WidePool,
    /// Optional scheduling-decision trace (disabled by default; enable
    /// with [`Machine::enable_trace`]).
    trace: TraceRing,
    // Scratch buffers, taken/restored around each use so the steady-state
    // event loop performs no per-dispatch heap allocation. Each is empty
    // whenever it sits in the struct. Rare re-entrant paths (the hotplug
    // daemon routing mid-drain) see an already-taken buffer and fall back
    // to a fresh empty one — correct, just not allocation-free.
    /// Sink for sink-style [`HypervisorSched`] calls.
    sched_buf: Vec<SchedEvent>,
    /// The routing work queue of [`Machine::drain`].
    ops_buf: VecDeque<Op>,
    /// vCPUs whose plan events went stale during a drain.
    dirty_buf: Vec<(DomId, VcpuId)>,
    /// Guest-effect sink for top-level event handlers.
    fx_buf: Vec<GuestEffect>,
    /// Guest-effect sink for the `Run` dispatch arm (live while `fx_buf`
    /// may be held by the outer handler).
    run_fx_buf: Vec<GuestEffect>,
    /// Guest-effect sink for the daemon freeze/unfreeze arms, which run
    /// inside `drain` while both `fx_buf` and `run_fx_buf` may be taken;
    /// a `mem::take` of either there would hand out a zero-capacity `Vec`
    /// and reallocate on every reconfiguration.
    daemon_fx_buf: Vec<GuestEffect>,
    /// Pending event-channel ports collected at vCPU entry.
    ports_buf: Vec<PortId>,
    /// (domain, target) pairs that already have a reschedule IPI in flight
    /// from the current dispatch — later same-target sends coalesce onto
    /// the pending-resched bit instead of raising another event.
    ipi_buf: Vec<(DomId, VcpuId)>,
    /// Seeded fault plan, if injection is enabled. `None` (the default)
    /// keeps every dispatch path byte-identical to the pre-fault code.
    fault_plan: Option<Box<FaultPlan>>,
    /// Watchdog bounds for the checked run loops and the routing guard.
    watchdog: WatchdogConfig,
    /// First structured failure recorded by a deep layer (routing storm);
    /// surfaced by the run loops instead of unwinding mid-drain.
    fault_error: Option<SimError>,
    /// Livelock watchdog: the instant being processed and how many events
    /// it has absorbed.
    wd_instant: SimTime,
    wd_instant_events: u64,
    /// Progress watchdog: the last fingerprint and when it last moved.
    wd_progress_fp: (u64, u64),
    wd_progress_at: SimTime,
    /// Dedicated RNG of the randomized-tick-offset defense, derived from
    /// the run seed (never the root `rng`, whose draw order is pinned by
    /// golden traces; never ambient entropy, so jittered runs replay
    /// bit-identically at any `VSCALE_THREADS`). Drawn from only when
    /// `DefenseConfig::tick_jitter` is on.
    tick_rng: SimRng,
    /// Tick re-arms that drew a jittered interval.
    ticks_jittered: u64,
}

impl Machine {
    /// Creates a machine with the given host configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use vscale::config::{MachineConfig, SystemConfig};
    /// use vscale::machine::Machine;
    /// use sim_core::time::SimTime;
    ///
    /// let mut m = Machine::new(MachineConfig { n_pcpus: 2, ..Default::default() });
    /// let vm = m.add_domain(SystemConfig::VScale.domain_spec(2));
    /// m.run_until(SimTime::from_ms(50));
    /// assert_eq!(m.guest(vm).active_vcpus(), 2);
    /// ```
    pub fn new(config: MachineConfig) -> Self {
        Machine::with_backend(config)
    }
}

impl<S: HypervisorSched> Machine<S> {
    /// Creates a machine running the scheduler backend `S`; like
    /// [`Machine::new`] but policy-generic:
    /// `Machine::<Credit2Scheduler>::with_backend(cfg)`.
    pub fn with_backend(config: MachineConfig) -> Machine<S> {
        // Map machine-level defenses onto the scheduler's config block.
        let mut credit = config.credit.clone();
        if config.defense.exact_burn {
            credit.sampled_burn = false;
        }
        if config.defense.kick_throttle {
            credit.kick_throttle = true;
        }
        let hv = S::new_pool(credit, config.n_pcpus);
        let mut queue = EventQueue::new();
        let mut tick_rng = SimRng::new(config.seed ^ TICK_JITTER_SALT);
        // Arm the recurring hypervisor timers. Under the tick-jitter
        // defense each pCPU's first tick already lands at a randomized
        // offset, so pCPUs desynchronize from the very first sample.
        for p in 0..config.n_pcpus {
            let first = if config.defense.tick_jitter {
                jittered_interval(config.credit.tick, &mut tick_rng)
            } else {
                config.credit.tick
            };
            queue.schedule(SimTime::ZERO + first, Ev::hv_tick(PcpuId(p)));
        }
        let acct = config.credit.tick * u64::from(config.credit.ticks_per_acct);
        queue.schedule(SimTime::ZERO + acct, Ev::HvAcct);
        queue.schedule(SimTime::ZERO + config.credit.extend_period, Ev::ExtendTick);
        let rng = SimRng::new(config.seed);
        Machine {
            config,
            hv,
            guests: Vec::new(),
            queue,
            rng,
            plan_handles: VcpuMap::new(),
            wide: WidePool::default(),
            trace: TraceRing::disabled(),
            sched_buf: Vec::new(),
            ops_buf: VecDeque::new(),
            dirty_buf: Vec::new(),
            fx_buf: Vec::new(),
            run_fx_buf: Vec::new(),
            daemon_fx_buf: Vec::new(),
            ports_buf: Vec::new(),
            ipi_buf: Vec::new(),
            fault_plan: None,
            watchdog: WatchdogConfig::default(),
            fault_error: None,
            wd_instant: SimTime::ZERO,
            wd_instant_events: 0,
            wd_progress_fp: (0, 0),
            wd_progress_at: SimTime::ZERO,
            tick_rng,
            ticks_jittered: 0,
        }
    }

    /// Installs a seeded fault plan; every subsequent dispatch consults it.
    /// Replaces any previous plan (and its injected-fault counters).
    pub fn set_fault_plan(&mut self, config: FaultConfig) {
        self.fault_plan = Some(Box::new(FaultPlan::new(config)));
    }

    /// Removes the fault plan; dispatch reverts to the fault-free paths.
    pub fn clear_fault_plan(&mut self) {
        self.fault_plan = None;
    }

    /// Counters of everything the fault plan injected so far.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault_plan.as_deref().map(FaultPlan::stats)
    }

    /// Test hook modeling a freeze/unfreeze hypercall lost by a crashed
    /// daemon incarnation: flips the hypervisor's frozen view of one vCPU
    /// away from the guest's freeze mask. The next post-crash resync must
    /// detect and repair the divergence.
    pub fn desync_frozen(&mut self, dom: DomId, vcpu: VcpuId) {
        let guest_frozen = self.guests[dom.index()]
            .kernel
            .freeze_mask()
            .is_frozen(vcpu);
        self.hv
            .set_frozen(GlobalVcpu::new(dom, vcpu), !guest_frozen);
    }

    /// The hypervisor's frozen view of one vCPU — lets tests check that
    /// recovery re-established guest/hypervisor freeze-state agreement.
    pub fn hv_frozen(&self, dom: DomId, vcpu: VcpuId) -> bool {
        self.hv.is_frozen(GlobalVcpu::new(dom, vcpu))
    }

    /// Overrides the watchdog bounds used by [`Machine::try_run_until`] /
    /// [`Machine::try_run_until_exited`] and the routing-storm guard.
    pub fn set_watchdog(&mut self, watchdog: WatchdogConfig) {
        self.watchdog = watchdog;
    }

    /// Enables tracing of pCPU assignment changes and reconfigurations,
    /// retaining the most recent `capacity` entries.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceRing::new(capacity);
    }

    /// The scheduling trace (empty unless [`Machine::enable_trace`] was
    /// called).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total machine events dispatched so far. The microcosts bench
    /// divides wall time by this to track dispatch-path throughput.
    pub fn events_delivered(&self) -> u64 {
        self.queue.delivered()
    }

    /// The hypervisor (read access for metrics).
    pub fn hv(&self) -> &S {
        &self.hv
    }

    /// Adds a domain; its vCPUs start blocked and wake when threads start.
    pub fn add_domain(&mut self, spec: DomainSpec) -> DomId {
        let n_vcpus = spec.guest.n_vcpus;
        let dom =
            self.hv
                .create_domain(spec.weight, n_vcpus, spec.cap_pcpus, spec.reservation_pcpus);
        let (daemon_cfg, hotplug) = match &spec.scaling {
            ScalingMode::Fixed => (crate::daemon::DaemonConfig::default(), None),
            ScalingMode::VScale(d) | ScalingMode::VcpuBal(d) => (*d, None),
            ScalingMode::Hotplug { daemon, version } => {
                (*daemon, Some(HotplugModel::new(*version)))
            }
        };
        let daemon_active = !matches!(spec.scaling, ScalingMode::Fixed);
        self.guests.push(GuestDomain {
            kernel: GuestKernel::new(spec.guest),
            evtchn: EvtchnTable::new(),
            port_pending: Vec::new(),
            scaling: spec.scaling,
            daemon: DaemonState::new(daemon_cfg),
            channel: VscaleChannel::new(),
            hotplug,
            active_trace: vec![(self.queue.now(), n_vcpus)],
            io_arrivals: Vec::new(),
            io_deliveries: Vec::new(),
            nic_completions: Vec::new(),
            nic_busy_until: SimTime::ZERO,
            nic_seq: 0,
            exited_threads: 0,
            doorbells: Vec::new(),
            retx_handles: Vec::new(),
            failsafe: FailSafe::new(self.config.recovery.heartbeat_ticks),
            hotplug_retry: HotplugRetry::default(),
            ipis_coalesced: 0,
            freeze_gate: FreezeRateGate::default(),
            weight: spec.weight,
        });
        self.plan_handles.push_domain(n_vcpus, |_| None);
        if daemon_active {
            let period = self.guests[dom.index()].daemon.config.period;
            self.queue
                .schedule(self.queue.now() + period, Ev::daemon_timer(dom));
        }
        dom
    }

    /// Mutable access to a domain's guest kernel (workload setup).
    pub fn guest_mut(&mut self, dom: DomId) -> &mut GuestKernel {
        &mut self.guests[dom.index()].kernel
    }

    /// Read access to a domain's guest kernel.
    pub fn guest(&self, dom: DomId) -> &GuestKernel {
        &self.guests[dom.index()].kernel
    }

    /// Starts a spawned thread (fork balance + wake path).
    pub fn start_thread(&mut self, dom: DomId, tid: ThreadId) {
        let now = self.queue.now();
        let mut fx = std::mem::take(&mut self.fx_buf);
        self.guests[dom.index()]
            .kernel
            .start_thread(tid, now, &mut fx);
        self.route(dom, &mut fx, now);
        self.fx_buf = fx;
    }

    /// Binds an I/O queue to an event-channel port delivered to `vcpu`.
    pub fn bind_io_port(&mut self, dom: DomId, q: IoQueueId, vcpu: VcpuId) -> PortId {
        let g = &mut self.guests[dom.index()];
        let port = g.evtchn.alloc(dom, vcpu, PortKind::Io);
        debug_assert_eq!(port.0, g.port_pending.len());
        g.port_pending.push((q, 0));
        g.doorbells.push(DoorbellLink::default());
        g.retx_handles.push(None);
        port
    }

    /// Schedules an external I/O arrival (e.g. one HTTP request) at `at`.
    pub fn inject_io(&mut self, dom: DomId, port: PortId, at: SimTime, items: u64) {
        let items = self.wide.intern(items);
        self.queue.schedule(at, Ev::io_arrival(dom, port, items));
    }

    /// Number of threads of `dom` that have exited.
    pub fn exited_threads(&self, dom: DomId) -> u64 {
        self.guests[dom.index()].exited_threads
    }

    /// The Figure 8 trace: (time, active vCPU count) change points.
    pub fn active_trace(&self, dom: DomId) -> &[(SimTime, usize)] {
        &self.guests[dom.index()].active_trace
    }

    /// Client-observed I/O logs: (arrivals, interrupt deliveries, reply
    /// completions).
    pub fn io_logs(&self, dom: DomId) -> (&[SimTime], &[SimTime], &[SimTime]) {
        let g = &self.guests[dom.index()];
        (&g.io_arrivals, &g.io_deliveries, &g.nic_completions)
    }

    /// Aggregate statistics for `dom`.
    pub fn domain_stats(&self, dom: DomId) -> DomainStats {
        let g = &self.guests[dom.index()];
        let n = g.kernel.n_vcpus();
        let mut doorbell = xen_sched::channel::DoorbellStats::default();
        for link in &g.doorbells {
            let s = link.stats();
            doorbell.sent += s.sent;
            doorbell.acked += s.acked;
            doorbell.retransmits += s.retransmits;
            doorbell.suppressed += s.suppressed;
            doorbell.exhausted += s.exhausted;
        }
        let rec = g.channel.recovery_stats();
        let run_total = self.hv.domain_run_total(dom);
        // Stolen-time estimate: run time beyond this domain's weight-fair
        // share of elapsed pool capacity (see the `stolen_est` field doc).
        let weight_sum: u64 = self.guests.iter().map(|g| u64::from(g.weight)).sum();
        let elapsed_ns = self.queue.now().since(SimTime::ZERO).as_ns();
        let fair_ns = if weight_sum == 0 {
            0
        } else {
            (elapsed_ns as u128 * self.config.n_pcpus as u128 * u128::from(g.weight)
                / u128::from(weight_sum)) as u64
        };
        let stolen_est = SimDuration::from_ns(run_total.as_ns().saturating_sub(fair_ns));
        DomainStats {
            wait_total: self.hv.domain_wait_total(dom),
            run_total,
            resched_ipis: (0..n).map(|i| g.kernel.resched_ipis(VcpuId(i))).collect(),
            timer_ints: (0..n).map(|i| g.kernel.timer_ints(VcpuId(i))).collect(),
            daemon_reads: g.daemon.reads,
            reconfigs: g.daemon.reconfigs,
            daemon_crashes: g.daemon.crashes,
            discarded_reads: g.daemon.discarded_reads,
            hotplug_aborts: g.daemon.hotplug_aborts,
            retransmits: doorbell.retransmits,
            doorbell_acks: doorbell.acked,
            dup_suppressed: doorbell.suppressed,
            retransmit_exhausted: doorbell.exhausted,
            read_retries: rec.retries,
            read_fallbacks: rec.fallbacks,
            resyncs: g.daemon.resyncs,
            resync_repairs: g.daemon.resync_repairs,
            failsafe_trips: g.failsafe.trips(),
            hotplug_retries: g.hotplug_retry.retries(),
            hotplug_giveups: g.hotplug_retry.giveups(),
            ipis_coalesced: g.ipis_coalesced,
            stolen_est,
            kicks_throttled: self.hv.kicks_throttled(dom),
            reconfigs_suppressed: g.freeze_gate.suppressed(),
        }
    }

    /// Tick re-arms that drew a jittered interval (the tick-jitter
    /// defense's activity counter; 0 when the defense is off).
    pub fn ticks_jittered(&self) -> u64 {
        self.ticks_jittered
    }

    // ------------------------------------------------------------------
    // The event loop.
    // ------------------------------------------------------------------

    /// Runs until `deadline` or until the event queue empties.
    ///
    /// Panics (with the full [`SimError`] rendering) if a routing storm is
    /// detected — the legacy loud-failure contract. Fault-injection runs
    /// should prefer [`Machine::try_run_until`], which also applies the
    /// livelock and progress watchdogs and returns a typed error.
    pub fn run_until(&mut self, deadline: SimTime) {
        // `pop_next_until` batches each instant behind a single wheel
        // settle — the dominant per-event queue cost in the dispatch loop.
        while let Some((now, ev)) = self.queue.pop_next_until(deadline) {
            self.handle(ev, now);
            if let Some(e) = self.fault_error.take() {
                panic!("{e}");
            }
        }
    }

    /// Runs until every thread of `dom` has exited, a deadline passes, or
    /// the queue empties. Returns the completion time if all exited.
    ///
    /// Panics on a routing storm; see [`Machine::run_until`].
    pub fn run_until_exited(&mut self, dom: DomId, deadline: SimTime) -> Option<SimTime> {
        loop {
            if self.guests[dom.index()].kernel.n_threads() > 0
                && self.guests[dom.index()].kernel.all_exited()
            {
                return Some(self.queue.now());
            }
            let (now, ev) = self.queue.pop_next_until(deadline)?;
            self.handle(ev, now);
            if let Some(e) = self.fault_error.take() {
                panic!("{e}");
            }
        }
    }

    /// Watchdog-supervised [`Machine::run_until`]: never hangs and never
    /// panics on the supervised paths — a wedged run returns a [`SimError`]
    /// naming the stalled layer, with diagnostics attached.
    pub fn try_run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        loop {
            // `pop_next_until` checks the cheap hint before settling, and
            // serves whole instants from one settle (batched drain).
            let Some((now, ev)) = self.queue.pop_next_until(deadline) else {
                return Ok(());
            };
            self.watchdog_tick(now)?;
            self.handle(ev, now);
            if let Some(e) = self.fault_error.take() {
                return Err(e);
            }
        }
    }

    /// The cluster layer's epoch driver: advances this host to `deadline`
    /// under watchdog supervision, processing every local event with
    /// `t <= deadline`.
    ///
    /// The lockstep contract: a cluster steps its hosts in epochs, and
    /// within one epoch each host evolves *only* from events already in
    /// its queue — cross-host messages are injected (via
    /// [`Machine::inject_io`]) strictly before the epoch that delivers
    /// them begins. Under that contract `step_to` is safe to call from a
    /// worker thread per host (machines share nothing), and a host's
    /// evolution is a pure function of its injected events, independent
    /// of how hosts are partitioned across workers.
    pub fn step_to(&mut self, deadline: SimTime) -> Result<(), SimError> {
        self.try_run_until(deadline)
    }

    /// Cheap lower bound on this machine's next event time, or `None`
    /// when its queue is empty. Inherits the wheel hint's contract:
    /// conservative (may be earlier than the true next event) but never
    /// late, so a caller that skips a [`Machine::step_to`] because the
    /// hint lies past its deadline skips only a guaranteed no-op — the
    /// cluster's sparse host stepping rests on exactly this.
    pub fn peek_time_hint(&self) -> Option<SimTime> {
        self.queue.peek_time_hint()
    }

    /// Watchdog-supervised [`Machine::run_until_exited`].
    pub fn try_run_until_exited(
        &mut self,
        dom: DomId,
        deadline: SimTime,
    ) -> Result<Option<SimTime>, SimError> {
        loop {
            if self.guests[dom.index()].kernel.n_threads() > 0
                && self.guests[dom.index()].kernel.all_exited()
            {
                return Ok(Some(self.queue.now()));
            }
            let Some((now, ev)) = self.queue.pop_next_until(deadline) else {
                return Ok(None);
            };
            self.watchdog_tick(now)?;
            self.handle(ev, now);
            if let Some(e) = self.fault_error.take() {
                return Err(e);
            }
        }
    }

    // ------------------------------------------------------------------
    // Watchdog and diagnostics.
    // ------------------------------------------------------------------

    /// Per-event watchdog bookkeeping for the checked run loops: counts
    /// same-instant events (livelock) and periodically re-fingerprints
    /// forward progress (stall). Detection latency for a stall is between
    /// one and two `stall_timeout`s of virtual time.
    fn watchdog_tick(&mut self, now: SimTime) -> Result<(), SimError> {
        if now == self.wd_instant {
            self.wd_instant_events += 1;
            if self.wd_instant_events > self.watchdog.max_events_per_instant {
                return Err(self.build_error(
                    SimErrorKind::Livelock {
                        events_at_instant: self.wd_instant_events,
                    },
                    "core::machine",
                ));
            }
        } else {
            self.wd_instant = now;
            self.wd_instant_events = 1;
        }
        if now.since(self.wd_progress_at) >= self.watchdog.stall_timeout {
            let fp = self.progress_fingerprint();
            if fp != self.wd_progress_fp || !self.wants_progress() {
                self.wd_progress_fp = fp;
                self.wd_progress_at = now;
            } else {
                return Err(self.build_error(
                    SimErrorKind::NoProgress {
                        stalled_for: now.since(self.wd_progress_at),
                    },
                    self.diagnose_stall(),
                ));
            }
        }
        Ok(())
    }

    /// A cheap digest that moves whenever the simulation does useful work:
    /// guest CPU time retired, plus discrete completions (thread exits,
    /// context switches, daemon reads).
    fn progress_fingerprint(&self) -> (u64, u64) {
        // One O(1) scheduler load for CPU progress — this runs on the
        // per-event dispatch path, so it must not fold per-domain
        // per-vCPU run totals (the pre-aggregated counter moves with
        // every credit burn, which is exactly "work happened").
        let work = self.hv.total_run_ns();
        let mut retired = 0u64;
        for g in self.guests.iter() {
            retired = retired
                .wrapping_add(g.exited_threads)
                .wrapping_add(g.kernel.stats().context_switches)
                .wrapping_add(g.daemon.reads);
        }
        (work, retired)
    }

    /// Whether anything in the system still owes progress. An idle machine
    /// (all threads exited, daemons quiescent) is allowed to coast on timer
    /// ticks forever without tripping the stall watchdog.
    fn wants_progress(&self) -> bool {
        self.guests.iter().any(|g| {
            (g.kernel.n_threads() > 0 && !g.kernel.all_exited())
                || g.daemon.phase != DaemonPhase::Idle
        })
    }

    /// Attributes a stall to the layer most plausibly wedged.
    fn diagnose_stall(&self) -> &'static str {
        for g in &self.guests {
            match g.daemon.phase {
                DaemonPhase::Reconfiguring { .. } => {
                    return if g.hotplug.is_some() {
                        "guest-kernel::hotplug"
                    } else {
                        "core::daemon"
                    };
                }
                DaemonPhase::Reading => return "core::daemon",
                DaemonPhase::Idle => {}
            }
        }
        for (i, g) in self.guests.iter().enumerate() {
            if g.kernel.n_threads() > 0 && !g.kernel.all_exited() {
                let dom = DomId(i);
                let any_running = (0..g.kernel.n_vcpus()).any(|v| {
                    self.hv
                        .where_running(GlobalVcpu::new(dom, VcpuId(v)))
                        .is_some()
                });
                // Running vCPUs that retire nothing point at the guest
                // scheduler; parked-but-owed vCPUs point at the hypervisor
                // or at external input that never arrives.
                return if any_running {
                    "guest-kernel::balancer"
                } else {
                    "xen-sched::credit"
                };
            }
        }
        "core::machine"
    }

    fn build_error(&self, kind: SimErrorKind, layer: &'static str) -> SimError {
        SimError {
            kind,
            at: self.queue.now(),
            layer,
            diagnostics: self.diagnostics(),
        }
    }

    /// Captures the diagnostics bundle: per-vCPU state dump plus the tail
    /// of the trace ring (when tracing is enabled).
    fn diagnostics(&self) -> Diagnostics {
        let mut dump = String::new();
        for (i, g) in self.guests.iter().enumerate() {
            let mode = match g.scaling {
                ScalingMode::Fixed => "fixed",
                ScalingMode::VScale(_) => "vscale",
                ScalingMode::VcpuBal(_) => "vcpu-bal",
                ScalingMode::Hotplug { .. } => "hotplug",
            };
            let _ = writeln!(
                dump,
                "dom{i} [{mode}]: phase={:?} threads={} exited={} reads={} \
                 discarded={} crashes={} aborts={}",
                g.daemon.phase,
                g.kernel.n_threads(),
                g.exited_threads,
                g.daemon.reads,
                g.daemon.discarded_reads,
                g.daemon.crashes,
                g.daemon.hotplug_aborts,
            );
            for v in 0..g.kernel.n_vcpus() {
                let vid = VcpuId(v);
                let on = self.hv.where_running(GlobalVcpu::new(DomId(i), vid));
                let _ = writeln!(
                    dump,
                    "  {vid:?}: online={} frozen={} running={}",
                    g.kernel.is_online(vid),
                    g.kernel.freeze_mask().is_frozen(vid),
                    on.map_or("-".to_string(), |p| format!("{p}")),
                );
            }
        }
        let backtrace = if self.trace.is_enabled() {
            let full = self.trace.dump();
            let lines: Vec<&str> = full.lines().collect();
            let tail = lines.len().saturating_sub(50);
            lines[tail..].join("\n")
        } else {
            "(trace disabled; call enable_trace() before the run for an event backtrace)"
                .to_string()
        };
        Diagnostics {
            event_backtrace: backtrace,
            vcpu_dump: dump,
        }
    }

    fn handle(&mut self, ev: Ev, now: SimTime) {
        match ev {
            Ev::HvTick(p) => {
                let p = PcpuId(p as usize);
                self.hv_and_drain(now, |hv, ev| hv.on_tick(p, now, ev));
                let interval = if self.config.defense.tick_jitter {
                    self.ticks_jittered += 1;
                    jittered_interval(self.config.credit.tick, &mut self.tick_rng)
                } else {
                    self.config.credit.tick
                };
                self.queue.schedule(now + interval, Ev::hv_tick(p));
                self.inject_steal_spike(now);
            }
            Ev::HvAcct => {
                self.hv_and_drain(now, |hv, ev| hv.on_acct(now, ev));
                let acct = self.config.credit.tick * u64::from(self.config.credit.ticks_per_acct);
                self.queue.schedule(now + acct, Ev::HvAcct);
            }
            Ev::ExtendTick => {
                self.hv.on_extend_tick(now);
                self.queue
                    .schedule(now + self.config.credit.extend_period, Ev::ExtendTick);
            }
            Ev::SliceEnd { pcpu, gen } => {
                let pcpu = PcpuId(pcpu as usize);
                if self.hv.pcpu_gen(pcpu) == self.wide.take(gen) {
                    self.hv_and_drain(now, |hv, ev| hv.slice_expired(pcpu, now, ev));
                }
            }
            Ev::Plan { dom, vcpu } => {
                let (dom, vcpu) = (DomId(dom as usize), VcpuId(vcpu as usize));
                self.plan_handles[GlobalVcpu::new(dom, vcpu)] = None;
                let mut fx = std::mem::take(&mut self.fx_buf);
                self.guests[dom.index()]
                    .kernel
                    .on_plan_point(vcpu, now, &mut fx);
                self.route(dom, &mut fx, now);
                self.fx_buf = fx;
                self.replan(dom, vcpu, now);
            }
            Ev::IpiDeliver { dom, vcpu } => {
                let (dom, vcpu) = (DomId(dom as usize), VcpuId(vcpu as usize));
                let gv = GlobalVcpu::new(dom, vcpu);
                if self.hv.where_running(gv).is_some() {
                    let mut fx = std::mem::take(&mut self.fx_buf);
                    self.guests[dom.index()]
                        .kernel
                        .on_resched_ipi(vcpu, now, &mut fx);
                    self.route(dom, &mut fx, now);
                    self.fx_buf = fx;
                    self.replan(dom, vcpu, now);
                } else {
                    // Target lost its pCPU while the IPI was in flight.
                    self.guests[dom.index()].kernel.pend_resched(vcpu);
                    self.hv_and_drain(now, |hv, ev| hv.vcpu_wake(gv, now, ev));
                }
            }
            Ev::SleepWake { dom, tid } => {
                let (dom, tid) = (DomId(dom as usize), ThreadId(tid as usize));
                let mut fx = std::mem::take(&mut self.fx_buf);
                self.guests[dom.index()]
                    .kernel
                    .wake_thread(tid, None, now, &mut fx);
                self.route(dom, &mut fx, now);
                self.fx_buf = fx;
            }
            Ev::DaemonTimer { dom } => {
                let dom = DomId(dom as usize);
                let crash = self
                    .fault_plan
                    .as_mut()
                    .is_some_and(|f| f.on_daemon_timer());
                if crash {
                    // The daemon process dies and respawns before its next
                    // period: soft state (EMA, streaks, in-flight read) is
                    // lost, lifetime counters survive, the timer re-arms.
                    self.trace
                        .push(now, "daemon", TraceEvent::DaemonCrashRestart(dom));
                    self.guests[dom.index()].daemon.crash_restart();
                    let period = self.guests[dom.index()].daemon.config.period;
                    self.queue.schedule(now + period, Ev::daemon_timer(dom));
                } else {
                    self.daemon_timer(dom, now);
                }
                // The balancer's heartbeat watchdog counts every period;
                // a completed read rearms it (see daemon_work_done).
                self.failsafe_tick(dom, now);
                // The freeze-rate hysteresis gate measures dwell in
                // daemon periods off this same timer.
                self.guests[dom.index()].freeze_gate.tick();
            }
            Ev::IoArrival { dom, port, items } => {
                let (dom, port) = (DomId(dom as usize), PortId(port as usize));
                let items = self.wide.take(items);
                self.io_arrival(dom, port, items, now);
            }
            Ev::NicDrained { dom } => {
                let dom = DomId(dom as usize);
                self.guests[dom.index()].nic_completions.push(now);
            }
            Ev::HotplugDone { dom, vcpu, online } => {
                let (dom, vcpu) = (DomId(dom as usize), VcpuId(vcpu as usize));
                let mut fx = std::mem::take(&mut self.fx_buf);
                self.guests[dom.index()]
                    .kernel
                    .set_online(vcpu, online, now, &mut fx);
                self.guests[dom.index()].hotplug_retry.on_success();
                self.guests[dom.index()].daemon.reconfigs += 1;
                self.guests[dom.index()].daemon.phase = DaemonPhase::Idle;
                let active = self.guests[dom.index()].kernel.active_vcpus();
                self.guests[dom.index()].active_trace.push((now, active));
                self.route(dom, &mut fx, now);
                self.fx_buf = fx;
            }
            Ev::PortRecover { dom, port } => {
                let (dom, port) = (DomId(dom as usize), PortId(port as usize));
                // A delayed doorbell rings, or the periodic re-scan notices
                // a pending bit whose doorbell was dropped. Spurious when
                // the port was delivered in the meantime: the pending bit
                // detects the replay and the ring is suppressed — the
                // idempotence half of the seq/ack protocol.
                if !self.guests[dom.index()].evtchn.port(port).pending {
                    if let Some(link) = self.guests[dom.index()].doorbells.get_mut(port.0) {
                        link.note_suppressed();
                    }
                    return;
                }
                self.deliver_or_wake(dom, port, now);
            }
            Ev::Retransmit { dom, port, seq } => {
                let (dom, port) = (DomId(dom as usize), PortId(port as usize));
                let seq = self.wide.take(seq);
                self.retransmit(dom, port, seq, now);
            }
            Ev::HotplugAborted { dom } => {
                let dom = DomId(dom as usize);
                // stop_machine unwound partway: the partial stall has been
                // paid, the target stays online, there is no local tail.
                self.trace
                    .push(now, "daemon", TraceEvent::HotplugAbort(dom));
                // Arm the capped exponential hold before the next removal
                // attempt, dated from the unwind (stalls vary in length).
                let policy = self.config.recovery.hotplug_retry;
                self.guests[dom.index()]
                    .hotplug_retry
                    .on_abort(now, &policy);
                self.guests[dom.index()].daemon.phase = DaemonPhase::Idle;
                for v in 0..self.guests[dom.index()].kernel.n_vcpus() {
                    self.replan(dom, VcpuId(v), now);
                }
            }
        }
    }

    /// Injects a steal-time spike on a plan-picked victim vCPU: queued
    /// kernel work the victim must burn before resuming its threads —
    /// the guest-visible shape of host-side stolen time.
    fn inject_steal_spike(&mut self, now: SimTime) {
        let Some(plan) = self.fault_plan.as_mut() else {
            return;
        };
        let Some(len) = plan.on_hv_tick() else {
            return;
        };
        if self.guests.is_empty() {
            return;
        }
        let n_guests = self.guests.len() as u64;
        let di = self
            .fault_plan
            .as_mut()
            .expect("plan present")
            .pick(n_guests) as usize;
        let n_vcpus = self.guests[di].kernel.n_vcpus() as u64;
        let vi = self
            .fault_plan
            .as_mut()
            .expect("plan present")
            .pick(n_vcpus) as usize;
        let dom = DomId(di);
        let victim = VcpuId(vi);
        self.guests[di].kernel.push_kwork(victim, now, len, None);
        if self
            .hv
            .where_running(GlobalVcpu::new(dom, victim))
            .is_some()
        {
            self.replan(dom, victim, now);
        }
        // A parked victim pays the spike when it next gets a pCPU; stolen
        // time cannot wake a sleeping vCPU.
    }

    /// Runs one sink-style scheduler call and appends the produced events
    /// to `ops` as routing work, via the reusable scratch sink.
    fn hv_into_ops(
        &mut self,
        ops: &mut VecDeque<Op>,
        f: impl FnOnce(&mut S, &mut Vec<SchedEvent>),
    ) {
        let mut buf = std::mem::take(&mut self.sched_buf);
        f(&mut self.hv, &mut buf);
        ops.extend(buf.drain(..).map(Op::Sched));
        self.sched_buf = buf;
    }

    /// Runs one sink-style scheduler call and drains the resulting cascade
    /// of guest reactions.
    fn hv_and_drain(&mut self, now: SimTime, f: impl FnOnce(&mut S, &mut Vec<SchedEvent>)) {
        let mut ops = std::mem::take(&mut self.ops_buf);
        self.hv_into_ops(&mut ops, f);
        if ops.is_empty() {
            // Nothing to route (the common case for ticks that change no
            // assignment): skip the drain and its scratch-buffer churn.
            self.ops_buf = ops;
            return;
        }
        self.drain(ops, now);
    }

    /// Routes guest effects produced by a direct call into a guest kernel
    /// (tests and tools that bypass the daemon), at the current time.
    pub fn apply_guest_effects(&mut self, dom: DomId, mut fx: Vec<GuestEffect>) {
        let now = self.queue.now();
        self.route(dom, &mut fx, now);
    }

    /// Routes guest effects from `dom`, cascading. Drains `fx`.
    fn route(&mut self, dom: DomId, fx: &mut Vec<GuestEffect>, now: SimTime) {
        if fx.is_empty() {
            // Nothing to route (most plan points advance a computation
            // without any cross-layer effect): the drain would be a no-op,
            // so skip it and its scratch-buffer churn.
            return;
        }
        let mut ops = std::mem::take(&mut self.ops_buf);
        ops.extend(fx.drain(..).map(|e| Op::Guest(dom, e)));
        self.drain(ops, now);
    }

    /// The central routing loop: processes scheduling events and guest
    /// effects until quiescent, collecting vCPUs whose plans went stale.
    /// `ops` returns to [`Machine::ops_buf`] (empty) when the loop ends.
    fn drain(&mut self, mut ops: VecDeque<Op>, now: SimTime) {
        let mut dirty = std::mem::take(&mut self.dirty_buf);
        // Targets already sent a reschedule IPI within this dispatch:
        // further IPIs to them coalesce onto the pending-resched bit.
        let mut ipi_seen = std::mem::take(&mut self.ipi_buf);
        let mut guard = 0u64;
        while let Some(op) = ops.pop_front() {
            guard += 1;
            if guard >= self.watchdog.max_events_per_instant {
                // A feedback loop between scheduler events and guest
                // effects. Record a structured error for the run loop to
                // surface (or panic with) and abandon the storm.
                ops.clear();
                if self.fault_error.is_none() {
                    self.fault_error =
                        Some(self.build_error(
                            SimErrorKind::RoutingStorm { ops: guard },
                            "core::machine",
                        ));
                }
                break;
            }
            match op {
                Op::Sched(SchedEvent::Run { pcpu, vcpu }) => {
                    self.trace.push(now, "hv", TraceEvent::Run { vcpu, pcpu });
                    let mut fx = std::mem::take(&mut self.run_fx_buf);
                    self.guests[vcpu.dom.index()]
                        .kernel
                        .vcpu_start(vcpu.vcpu, now, &mut fx);
                    // Deliver any pending event-channel interrupts.
                    let mut pending = std::mem::take(&mut self.ports_buf);
                    self.guests[vcpu.dom.index()]
                        .evtchn
                        .pending_for_into(vcpu.vcpu, &mut pending);
                    for port in pending.drain(..) {
                        self.deliver_port(vcpu.dom, port, now, &mut fx);
                    }
                    self.ports_buf = pending;
                    ops.extend(fx.drain(..).map(|e| Op::Guest(vcpu.dom, e)));
                    self.run_fx_buf = fx;
                    // Arm the slice-expiry for this assignment.
                    let gen = self.wide.intern(self.hv.pcpu_gen(pcpu));
                    self.queue
                        .schedule(now + self.config.credit.slice, Ev::slice_end(pcpu, gen));
                    dirty.push((vcpu.dom, vcpu.vcpu));
                }
                Op::Sched(SchedEvent::Desched { pcpu, vcpu }) => {
                    self.trace
                        .push(now, "hv", TraceEvent::Desched { vcpu, pcpu });
                    self.guests[vcpu.dom.index()]
                        .kernel
                        .vcpu_stop(vcpu.vcpu, now);
                    dirty.push((vcpu.dom, vcpu.vcpu));
                }
                Op::Sched(SchedEvent::Idle { .. }) => {}
                Op::Guest(dom, e) => {
                    self.guest_effect(dom, e, now, &mut ops, &mut dirty, &mut ipi_seen);
                }
            }
        }
        for (dom, vcpu) in dirty.drain(..) {
            self.replan(dom, vcpu, now);
        }
        ipi_seen.clear();
        self.ipi_buf = ipi_seen;
        self.dirty_buf = dirty;
        self.ops_buf = ops;
    }

    fn guest_effect(
        &mut self,
        dom: DomId,
        e: GuestEffect,
        now: SimTime,
        ops: &mut VecDeque<Op>,
        dirty: &mut Vec<(DomId, VcpuId)>,
        ipi_seen: &mut Vec<(DomId, VcpuId)>,
    ) {
        match e {
            GuestEffect::VcpuIdle(v) => {
                if self.guests[dom.index()].kernel.wants_block(v) {
                    self.hv_into_ops(ops, |hv, ev| {
                        hv.vcpu_block(GlobalVcpu::new(dom, v), now, ev)
                    });
                } else {
                    dirty.push((dom, v));
                }
            }
            GuestEffect::VcpuPvBlock(v) => {
                self.hv_into_ops(ops, |hv, ev| {
                    hv.vcpu_block(GlobalVcpu::new(dom, v), now, ev)
                });
            }
            GuestEffect::SendResched { from, to } => {
                dirty.push((dom, from));
                let gv = GlobalVcpu::new(dom, to);
                if self.hv.where_running(gv).is_some() {
                    if ipi_seen.contains(&(dom, to)) {
                        // An IPI to this target is already in flight from
                        // this same dispatch: coalesce onto the
                        // pending-resched bit, which the in-flight IPI's
                        // handler (or the slice end) will act on. No new
                        // doorbell edge, so no fault draw either.
                        self.guests[dom.index()].kernel.pend_resched(to);
                        self.guests[dom.index()].ipis_coalesced += 1;
                        return;
                    }
                    ipi_seen.push((dom, to));
                    let base = now + self.config.ipi_latency;
                    let fault = self
                        .fault_plan
                        .as_mut()
                        .map_or(DeliveryFault::Deliver, |f| f.on_ipi());
                    match fault {
                        DeliveryFault::Deliver => {
                            self.queue.schedule(base, Ev::ipi_deliver(dom, to));
                        }
                        DeliveryFault::Drop => {
                            // The doorbell is lost, but the pending bit
                            // survives: the target acts on it at its next
                            // natural scheduling point (bounded by the end
                            // of its current slice).
                            self.guests[dom.index()].kernel.pend_resched(to);
                        }
                        DeliveryFault::Delay(d) => {
                            self.queue.schedule(base + d, Ev::ipi_deliver(dom, to));
                        }
                        DeliveryFault::Duplicate(d) => {
                            self.queue.schedule(base, Ev::ipi_deliver(dom, to));
                            self.queue.schedule(base + d, Ev::ipi_deliver(dom, to));
                        }
                    }
                } else {
                    self.guests[dom.index()].kernel.pend_resched(to);
                    self.hv_into_ops(ops, |hv, ev| hv.vcpu_wake(gv, now, ev));
                }
            }
            GuestEffect::PvKick(v) => {
                self.hv_into_ops(ops, |hv, ev| hv.vcpu_wake(GlobalVcpu::new(dom, v), now, ev));
            }
            GuestEffect::SetFrozen { vcpu, frozen } => {
                let gv = GlobalVcpu::new(dom, vcpu);
                let ev = if frozen {
                    TraceEvent::Freeze(gv)
                } else {
                    TraceEvent::Unfreeze(gv)
                };
                self.trace.push(now, "daemon", ev);
                self.hv.set_frozen(gv, frozen);
                let active = self.guests[dom.index()].kernel.active_vcpus();
                self.guests[dom.index()].active_trace.push((now, active));
            }
            GuestEffect::KickVcpu(v) => {
                self.hv_into_ops(ops, |hv, ev| hv.kick_vcpu(GlobalVcpu::new(dom, v), now, ev));
                dirty.push((dom, v));
            }
            GuestEffect::NicSend { bytes, .. } => {
                let g = &mut self.guests[dom.index()];
                let wire = SimDuration::from_ns(bytes * 8 * 1_000_000_000 / self.config.nic_bps);
                let start = g.nic_busy_until.max(now);
                g.nic_busy_until = start + wire;
                g.nic_seq += 1;
                self.queue.schedule(g.nic_busy_until, Ev::nic_drained(dom));
            }
            GuestEffect::SleepUntil { tid, wake_at } => {
                self.queue.schedule(wake_at, Ev::sleep_wake(dom, tid));
            }
            GuestEffect::ThreadExited(_) => {
                self.guests[dom.index()].exited_threads += 1;
            }
            GuestEffect::KernelWorkDone { vcpu, tag } => {
                self.daemon_work_done(dom, vcpu, tag, now, ops, dirty);
            }
            GuestEffect::Replan(v) => {
                dirty.push((dom, v));
            }
        }
    }

    /// Recomputes and rearms the plan event for one vCPU.
    fn replan(&mut self, dom: DomId, vcpu: VcpuId, now: SimTime) {
        if let Some(h) = self.plan_handles[GlobalVcpu::new(dom, vcpu)].take() {
            self.queue.cancel(h);
        }
        if self.hv.where_running(GlobalVcpu::new(dom, vcpu)).is_none() {
            return;
        }
        if let Some(t) = self.guests[dom.index()].kernel.next_plan(vcpu, now) {
            if t != SimTime::MAX {
                let h = self.queue.schedule(t, Ev::plan(dom, vcpu));
                self.plan_handles[GlobalVcpu::new(dom, vcpu)] = Some(h);
            }
        }
    }

    // ------------------------------------------------------------------
    // I/O path.
    // ------------------------------------------------------------------

    fn io_arrival(&mut self, dom: DomId, port: PortId, items: u64, now: SimTime) {
        self.guests[dom.index()].io_arrivals.push(now);
        // vScale migrates interrupts when they occur: consult the guest.
        let bound = self.guests[dom.index()].evtchn.port(port).bound_vcpu;
        let (target, redirected) = self.guests[dom.index()].kernel.irq_target(bound);
        if redirected {
            let cost = self.guests[dom.index()].evtchn.rebind(port, target);
            // The rebind hypercall is charged on the new target vCPU.
            self.guests[dom.index()]
                .kernel
                .push_kwork(target, now, cost, None);
        }
        self.guests[dom.index()].port_pending[port.0].1 += items;
        let notify = self.guests[dom.index()].evtchn.send(port);
        let gv = GlobalVcpu::new(dom, target);
        // A fault can only touch an actual doorbell edge: a coalesced send
        // (port already pending) raises none, so nothing is drawn for it.
        let fault = if notify.is_some() {
            self.fault_plan
                .as_mut()
                .map_or(DeliveryFault::Deliver, |f| f.on_notify())
        } else {
            DeliveryFault::Deliver
        };
        match fault {
            DeliveryFault::Drop => {
                // The doorbell is lost; the pending bit and the payload
                // survive. The sender cannot confirm the edge: open a
                // sequence and arm the retransmit timer. Should the whole
                // backoff ladder be lost too, the guest's periodic re-scan
                // remains the delivery bound of last resort.
                let seq = self.guests[dom.index()].doorbells[port.0].open();
                let rto = self.config.recovery.retransmit.timeout(0);
                let widx = self.wide.intern(seq);
                let h = self
                    .queue
                    .schedule(now + rto, Ev::retransmit(dom, port, widx));
                self.guests[dom.index()].retx_handles[port.0] = Some((h, widx));
            }
            DeliveryFault::Delay(d) => {
                // The doorbell is late: the ring lands at `now + d`, but
                // the sender sees no timely ack, so the seq/ack machinery
                // arms exactly as for a drop. Whichever of the late ring or
                // a retransmit lands first delivers and acks; the loser is
                // suppressed by the pending bit.
                let seq = self.guests[dom.index()].doorbells[port.0].open();
                self.queue.schedule(now + d, Ev::port_recover(dom, port));
                let rto = self.config.recovery.retransmit.timeout(0);
                let widx = self.wide.intern(seq);
                let h = self
                    .queue
                    .schedule(now + rto, Ev::retransmit(dom, port, widx));
                self.guests[dom.index()].retx_handles[port.0] = Some((h, widx));
            }
            DeliveryFault::Deliver | DeliveryFault::Duplicate(_) => {
                if let DeliveryFault::Duplicate(d) = fault {
                    // The spurious second doorbell: a PortRecover that
                    // finds nothing pending and does nothing.
                    self.queue.schedule(now + d, Ev::port_recover(dom, port));
                }
                if self.hv.where_running(gv).is_some() {
                    // Deliver right away.
                    let mut fx = std::mem::take(&mut self.fx_buf);
                    self.deliver_port(dom, port, now, &mut fx);
                    self.route(dom, &mut fx, now);
                    self.fx_buf = fx;
                    self.replan(dom, target, now);
                } else if notify.is_some() {
                    // Wake the vCPU through the hypervisor; delivery happens at
                    // vcpu_start (the Figure 1(c) delay when pCPUs are contended).
                    self.hv_and_drain(now, |hv, ev| hv.vcpu_wake(gv, now, ev));
                }
            }
        }
    }

    /// Delivers one pending port to its bound vCPU (which holds a pCPU).
    fn deliver_port(&mut self, dom: DomId, port: PortId, now: SimTime, fx: &mut Vec<GuestEffect>) {
        let di = dom.index();
        if !self.guests[di].evtchn.deliver(port) {
            return;
        }
        // Any successful delivery — retransmitted, re-scanned, or a natural
        // vcpu_start sweep — acknowledges the outstanding doorbell sequence
        // and disarms its retransmit timer.
        if let Some((h, seq_slot)) = self.guests[di]
            .retx_handles
            .get_mut(port.0)
            .and_then(Option::take)
        {
            self.queue.cancel(h);
            self.wide.take(seq_slot);
        }
        if let Some(link) = self.guests[di].doorbells.get_mut(port.0) {
            link.ack_outstanding();
        }
        let g = &mut self.guests[di];
        let vcpu = g.evtchn.port(port).bound_vcpu;
        let (q, items) = {
            let entry = &mut g.port_pending[port.0];
            let out = (entry.0, entry.1);
            entry.1 = 0;
            out
        };
        if items == 0 {
            return;
        }
        for _ in 0..items {
            g.io_deliveries.push(now);
        }
        g.kernel.deliver_io_irq(vcpu, q, items, now, fx);
    }

    /// Delivers a pending port right away when its bound vCPU holds a
    /// pCPU, otherwise wakes the vCPU through the hypervisor (delivery
    /// then happens at its `vcpu_start` pending-port sweep).
    fn deliver_or_wake(&mut self, dom: DomId, port: PortId, now: SimTime) {
        let bound = self.guests[dom.index()].evtchn.port(port).bound_vcpu;
        let gv = GlobalVcpu::new(dom, bound);
        if self.hv.where_running(gv).is_some() {
            let mut fx = std::mem::take(&mut self.fx_buf);
            self.deliver_port(dom, port, now, &mut fx);
            self.route(dom, &mut fx, now);
            self.fx_buf = fx;
            self.replan(dom, bound, now);
        } else {
            self.hv_and_drain(now, |hv, ev| hv.vcpu_wake(gv, now, ev));
        }
    }

    /// A doorbell ack timeout fired: re-ring the doorbell for `seq` if it
    /// is still outstanding, drawing a fresh injected outcome for the
    /// retransmitted ring, and advance the capped exponential backoff.
    /// Once the attempt budget is spent, recovery falls back to the
    /// receiver's periodic re-scan — the delivery bound of last resort.
    fn retransmit(&mut self, dom: DomId, port: PortId, seq: u64, now: SimTime) {
        let di = dom.index();
        self.guests[di].retx_handles[port.0] = None;
        if !self.guests[di].doorbells[port.0].is_outstanding(seq) {
            return; // Acked while the timer was in flight.
        }
        if !self.guests[di].evtchn.port(port).pending {
            // Delivered through a path that raced the ack bookkeeping;
            // nothing left to re-ring.
            self.guests[di].doorbells[port.0].ack_outstanding();
            return;
        }
        self.guests[di].doorbells[port.0].note_retransmit();
        let fault = self
            .fault_plan
            .as_mut()
            .map_or(DeliveryFault::Deliver, |f| f.on_notify());
        match fault {
            DeliveryFault::Drop | DeliveryFault::Delay(_) => {
                if let DeliveryFault::Delay(d) = fault {
                    // The re-rung doorbell arrives, just late.
                    self.queue.schedule(now + d, Ev::port_recover(dom, port));
                }
                let policy = self.config.recovery.retransmit;
                match self.guests[di].doorbells[port.0].backoff(seq, &policy) {
                    Some(delay) => {
                        let widx = self.wide.intern(seq);
                        let h = self
                            .queue
                            .schedule(now + delay, Ev::retransmit(dom, port, widx));
                        self.guests[di].retx_handles[port.0] = Some((h, widx));
                    }
                    None => {
                        // Budget exhausted. The pending bit still holds the
                        // truth: hand over to the periodic re-scan.
                        let recovery = self
                            .fault_plan
                            .as_ref()
                            .expect("a drawn fault implies a plan")
                            .config()
                            .notify_recovery;
                        self.queue
                            .schedule(now + recovery, Ev::port_recover(dom, port));
                    }
                }
            }
            DeliveryFault::Deliver | DeliveryFault::Duplicate(_) => {
                if let DeliveryFault::Duplicate(d) = fault {
                    // The spurious second ring: a PortRecover that finds
                    // nothing pending and is suppressed.
                    self.queue.schedule(now + d, Ev::port_recover(dom, port));
                }
                self.guests[di].doorbells[port.0].ack_outstanding();
                self.deliver_or_wake(dom, port, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // The daemon (vScale or hotplug baseline).
    // ------------------------------------------------------------------

    fn daemon_timer(&mut self, dom: DomId, now: SimTime) {
        let period = self.guests[dom.index()].daemon.config.period;
        self.queue.schedule(now + period, Ev::daemon_timer(dom));
        if matches!(self.guests[dom.index()].scaling, ScalingMode::Fixed) {
            return;
        }
        if self.guests[dom.index()].daemon.phase != DaemonPhase::Idle {
            return; // Previous operation still in flight.
        }
        // Queue the channel read on vCPU0 (RT-class daemon work).
        self.guests[dom.index()].daemon.phase = DaemonPhase::Reading;
        let cost = self.guests[dom.index()]
            .kernel
            .config()
            .costs
            .channel_read_total();
        self.guests[dom.index()]
            .kernel
            .push_kwork(VcpuId(0), now, cost, Some(TAG_READ));
        // vCPU0 may be idle-blocked: kick it so the daemon runs.
        let gv = GlobalVcpu::new(dom, VcpuId(0));
        if self.hv.where_running(gv).is_none() {
            self.hv_and_drain(now, |hv, ev| hv.vcpu_wake(gv, now, ev));
        } else {
            self.replan(dom, VcpuId(0), now);
        }
    }

    /// One daemon period elapsed for `dom`'s heartbeat watchdog. On a
    /// trip — `heartbeat_ticks` periods without a completed update — the
    /// balancer unfreezes every vCPU: the guest degrades to the unscaled
    /// SMP baseline rather than honoring a mask nobody is maintaining.
    fn failsafe_tick(&mut self, dom: DomId, now: SimTime) {
        let g = &mut self.guests[dom.index()];
        // Only mask-scaling modes honor the freeze mask; hotplug guests
        // size via online/offline and Fixed guests never freeze.
        if g.hotplug.is_some() || matches!(g.scaling, ScalingMode::Fixed) {
            return;
        }
        if !g.failsafe.tick() {
            return;
        }
        self.trace
            .push(now, "guest", TraceEvent::FailsafeUnfreezeAll(dom));
        let n = self.guests[dom.index()].kernel.n_vcpus();
        let mut fx = std::mem::take(&mut self.fx_buf);
        for v in 1..n {
            let vcpu = VcpuId(v);
            if self.guests[dom.index()]
                .kernel
                .freeze_mask()
                .is_frozen(vcpu)
            {
                self.guests[dom.index()]
                    .kernel
                    .unfreeze_vcpu(vcpu, now, &mut fx);
            }
        }
        // The trip also clears a wedged phase so the next period's read
        // can decide again once the daemon recovers.
        self.guests[dom.index()].daemon.phase = DaemonPhase::Idle;
        self.route(dom, &mut fx, now);
        self.fx_buf = fx;
        let active = self.guests[dom.index()].kernel.active_vcpus();
        self.guests[dom.index()].active_trace.push((now, active));
    }

    /// Post-crash reconciliation: the restarted daemon walks every vCPU
    /// and repairs any divergence between the guest's freeze mask (the
    /// guest-side source of truth) and the hypervisor's frozen view — a
    /// freeze/unfreeze hypercall issued by the dead incarnation may never
    /// have landed.
    fn resync_freeze_mask(&mut self, dom: DomId, now: SimTime) {
        self.guests[dom.index()].daemon.needs_resync = false;
        self.guests[dom.index()].daemon.resyncs += 1;
        let n = self.guests[dom.index()].kernel.n_vcpus();
        for v in 0..n {
            let vcpu = VcpuId(v);
            let gv = GlobalVcpu::new(dom, vcpu);
            let guest_frozen = self.guests[dom.index()]
                .kernel
                .freeze_mask()
                .is_frozen(vcpu);
            if self.hv.is_frozen(gv) != guest_frozen {
                self.trace.push(now, "daemon", TraceEvent::ResyncRepair(gv));
                self.hv.set_frozen(gv, guest_frozen);
                self.guests[dom.index()].daemon.resync_repairs += 1;
            }
        }
    }

    fn daemon_work_done(
        &mut self,
        dom: DomId,
        _vcpu: VcpuId,
        tag: u64,
        now: SimTime,
        ops: &mut VecDeque<Op>,
        dirty: &mut Vec<(DomId, VcpuId)>,
    ) {
        if tag == TAG_READ {
            if self.guests[dom.index()].daemon.orphaned_reads > 0 {
                // This reply belongs to a daemon incarnation that crashed
                // while it was in flight: the restarted daemon never sees
                // it. FIFO kwork order guarantees orphans drain before any
                // read the new incarnation issued.
                let g = &mut self.guests[dom.index()];
                g.daemon.orphaned_reads -= 1;
                g.daemon.discarded_reads += 1;
                return;
            }
            // The reliable read loops over injected serve outcomes: a torn
            // or stale serve is detected (snapshot validation / seqlock
            // version check) and retried up to the budget, after which the
            // last-good snapshot is served instead of the period being
            // discarded outright.
            let budget = self.config.recovery.read_retry_budget;
            let plan = &mut self.fault_plan;
            let g = &mut self.guests[dom.index()];
            g.daemon.reads += 1;
            // The base read cost was charged as kwork at queue time; the
            // channel only decides which snapshot is served.
            let rr =
                g.channel
                    .read_reliable(&self.hv, dom, &ChannelCosts::default(), budget, || {
                        plan.as_mut()
                            .map_or(ChannelReadFault::Fresh, |f| f.on_channel_read())
                    });
            if rr.retries > 0 {
                // Each extra attempt re-issues the read syscall+hypercall:
                // charge it, so retries show up as daemon overhead.
                let extra = SimDuration::from_ns(
                    ChannelCosts::default().total().as_ns() * u64::from(rr.retries),
                );
                g.kernel.push_kwork(VcpuId(0), now, extra, None);
                dirty.push((dom, VcpuId(0)));
            }
            let Some(info) = rr.info else {
                // Retry budget exhausted before any snapshot was ever
                // accepted (a torn maiden read): discard the period rather
                // than acting on inconsistent fields.
                g.daemon.discarded_reads += 1;
                g.daemon.phase = DaemonPhase::Idle;
                return;
            };
            // A completed update — validated fresh or last-good fallback —
            // proves the daemon alive: rearm the balancer's fail-safe.
            g.failsafe.record_update();
            if g.daemon.needs_resync {
                self.resync_freeze_mask(dom, now);
            }
            let kernel = &self.guests[dom.index()].kernel;
            let active = kernel.active_vcpus();
            let n_vcpus = kernel.n_vcpus();
            let ext_raw = match self.guests[dom.index()].scaling {
                // VCPU-Bal sizes from the weight-derived fair share only,
                // ignoring consumption (not work-conserving, §2.3).
                ScalingMode::VcpuBal(_) => info.fair.ratio(info.period),
                // vScale: Algorithm 1's extendability, floored by measured
                // consumption — a witness of obtainable allocation, since
                // slack apportioned to competitors that cannot spend it
                // flows back work-conservingly.
                _ => info.ext_pcpus().max(info.consumed_pcpus()),
            };
            let ext_smoothed = self.guests[dom.index()].daemon.smooth(ext_raw);
            // Algorithm 1's ceiling rule, applied to the smoothed value.
            let n_opt = (ext_smoothed.ceil() as usize).clamp(1, n_vcpus);
            let step = self.guests[dom.index()]
                .daemon
                .decide(n_opt, ext_smoothed, active);
            // Freeze-rate hysteresis (oscillation defense): a decided
            // step must also clear the dwell gate, else it is dropped
            // and counted. At the default dwell of 0 the gate always
            // passes and never mutates observable behavior.
            let dwell = self.config.defense.freeze_dwell;
            let step = match step {
                Some(s) if self.guests[dom.index()].freeze_gate.allow(dwell) => Some(s),
                _ => None,
            };
            match step {
                Some(1) => self.begin_grow(dom, now, dirty),
                Some(-1) => self.begin_shrink(dom, now, dirty),
                _ => {
                    self.guests[dom.index()].daemon.phase = DaemonPhase::Idle;
                }
            }
        } else if (TAG_FREEZE_BASE..TAG_UNFREEZE_BASE).contains(&tag) {
            let target = VcpuId((tag - TAG_FREEZE_BASE) as usize);
            let mut fx = std::mem::take(&mut self.daemon_fx_buf);
            self.guests[dom.index()]
                .kernel
                .freeze_vcpu(target, now, &mut fx);
            ops.extend(fx.drain(..).map(|e| Op::Guest(dom, e)));
            self.daemon_fx_buf = fx;
            self.guests[dom.index()].daemon.reconfigs += 1;
            self.guests[dom.index()].daemon.phase = DaemonPhase::Idle;
        } else if (TAG_UNFREEZE_BASE..TAG_HOTPLUG_BASE).contains(&tag) {
            let target = VcpuId((tag - TAG_UNFREEZE_BASE) as usize);
            let mut fx = std::mem::take(&mut self.daemon_fx_buf);
            self.guests[dom.index()]
                .kernel
                .unfreeze_vcpu(target, now, &mut fx);
            ops.extend(fx.drain(..).map(|e| Op::Guest(dom, e)));
            self.daemon_fx_buf = fx;
            self.guests[dom.index()].daemon.reconfigs += 1;
            self.guests[dom.index()].daemon.phase = DaemonPhase::Idle;
        }
    }

    /// Starts activating one more vCPU.
    fn begin_grow(&mut self, dom: DomId, now: SimTime, dirty: &mut Vec<(DomId, VcpuId)>) {
        let g = &mut self.guests[dom.index()];
        if let Some(hp) = g.hotplug.clone() {
            // Hotplug add: no stop_machine, but a long notifier chain on
            // the initiating vCPU, then the vCPU comes online.
            let Some(target) = g.kernel.freeze_mask().lowest_frozen() else {
                g.daemon.phase = DaemonPhase::Idle;
                return;
            };
            let latency = hp.sample_add(&mut self.rng);
            g.daemon.phase = DaemonPhase::Reconfiguring {
                target,
                freeze: false,
            };
            self.queue
                .schedule(now + latency, Ev::hotplug_done(dom, target, true));
            return;
        }
        let Some(target) = g.kernel.freeze_mask().lowest_frozen() else {
            g.daemon.phase = DaemonPhase::Idle;
            return;
        };
        g.daemon.phase = DaemonPhase::Reconfiguring {
            target,
            freeze: false,
        };
        let cost = g.kernel.config().costs.freeze_master_total();
        g.kernel.push_kwork(
            VcpuId(0),
            now,
            cost,
            Some(TAG_UNFREEZE_BASE + target.index() as u64),
        );
        dirty.push((dom, VcpuId(0)));
    }

    /// Starts deactivating one vCPU (never vCPU0).
    fn begin_shrink(&mut self, dom: DomId, now: SimTime, dirty: &mut Vec<(DomId, VcpuId)>) {
        let g = &mut self.guests[dom.index()];
        let Some(target) = g.kernel.freeze_mask().highest_active() else {
            g.daemon.phase = DaemonPhase::Idle;
            return;
        };
        if target.index() == 0 {
            g.daemon.phase = DaemonPhase::Idle;
            return; // The master vCPU stays.
        }
        if let Some(hp) = g.hotplug.clone() {
            if !g.hotplug_retry.allows(now) {
                // Backing off after an aborted removal: skip this period
                // and let the monitoring loop re-decide once the hold
                // expires.
                g.daemon.phase = DaemonPhase::Idle;
                return;
            }
            // Hotplug remove: stop_machine stalls the whole guest for a
            // chunk of the latency, then the vCPU goes offline.
            let latency = hp.sample_remove(&mut self.rng);
            let (stop, local) = hp.split_remove(latency);
            if let Some(frac) = self.fault_plan.as_mut().and_then(|f| f.on_hotplug_remove()) {
                // The removal aborts `frac` of the way into stop_machine
                // (a notifier veto): the guest pays the partial stall,
                // the teardown unwinds, the vCPU stays online.
                let stall = hp.abort_stall(latency, frac);
                let mut fx = std::mem::take(&mut self.fx_buf);
                self.guests[dom.index()]
                    .kernel
                    .stall_all(now, now + stall, &mut fx);
                self.guests[dom.index()].daemon.phase = DaemonPhase::Reconfiguring {
                    target,
                    freeze: true,
                };
                self.guests[dom.index()].daemon.hotplug_aborts += 1;
                self.queue.schedule(now + stall, Ev::hotplug_aborted(dom));
                self.route(dom, &mut fx, now);
                self.fx_buf = fx;
                return;
            }
            let mut fx = std::mem::take(&mut self.fx_buf);
            self.guests[dom.index()]
                .kernel
                .stall_all(now, now + stop, &mut fx);
            self.guests[dom.index()].daemon.phase = DaemonPhase::Reconfiguring {
                target,
                freeze: true,
            };
            self.queue
                .schedule(now + stop + local, Ev::hotplug_done(dom, target, false));
            self.route(dom, &mut fx, now);
            self.fx_buf = fx;
            return;
        }
        g.daemon.phase = DaemonPhase::Reconfiguring {
            target,
            freeze: true,
        };
        let cost = g.kernel.config().costs.freeze_master_total();
        g.kernel.push_kwork(
            VcpuId(0),
            now,
            cost,
            Some(TAG_FREEZE_BASE + target.index() as u64),
        );
        dirty.push((dom, VcpuId(0)));
    }
}

// ----------------------------------------------------------------------
// Checkpoint/restore and live-migration state transfer.
// ----------------------------------------------------------------------

/// A machine event in portable checkpoint form: the compact in-flight
/// representation [`Ev`] with its [`WidePool`] payload resolved. Images
/// store wide words by value, not by slot index — slot assignment is a
/// run-local allocation detail two behaviorally identical machines can
/// disagree on.
#[derive(Clone, Copy, Debug)]
enum SavedEv {
    HvTick(u32),
    HvAcct,
    ExtendTick,
    SliceEnd { pcpu: u32, gen: u64 },
    Plan { dom: u32, vcpu: u32 },
    IpiDeliver { dom: u32, vcpu: u32 },
    SleepWake { dom: u32, tid: u32 },
    DaemonTimer { dom: u32 },
    IoArrival { dom: u32, port: u32, items: u64 },
    NicDrained { dom: u32 },
    HotplugDone { dom: u32, vcpu: u32, online: bool },
    PortRecover { dom: u32, port: u32 },
    Retransmit { dom: u32, port: u32, seq: u64 },
    HotplugAborted { dom: u32 },
}

impl SavedEv {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            SavedEv::HvTick(p) => {
                w.u8(0);
                w.u32(p);
            }
            SavedEv::HvAcct => w.u8(1),
            SavedEv::ExtendTick => w.u8(2),
            SavedEv::SliceEnd { pcpu, gen } => {
                w.u8(3);
                w.u32(pcpu);
                w.u64(gen);
            }
            SavedEv::Plan { dom, vcpu } => {
                w.u8(4);
                w.u32(dom);
                w.u32(vcpu);
            }
            SavedEv::IpiDeliver { dom, vcpu } => {
                w.u8(5);
                w.u32(dom);
                w.u32(vcpu);
            }
            SavedEv::SleepWake { dom, tid } => {
                w.u8(6);
                w.u32(dom);
                w.u32(tid);
            }
            SavedEv::DaemonTimer { dom } => {
                w.u8(7);
                w.u32(dom);
            }
            SavedEv::IoArrival { dom, port, items } => {
                w.u8(8);
                w.u32(dom);
                w.u32(port);
                w.u64(items);
            }
            SavedEv::NicDrained { dom } => {
                w.u8(9);
                w.u32(dom);
            }
            SavedEv::HotplugDone { dom, vcpu, online } => {
                w.u8(10);
                w.u32(dom);
                w.u32(vcpu);
                w.bool(online);
            }
            SavedEv::PortRecover { dom, port } => {
                w.u8(11);
                w.u32(dom);
                w.u32(port);
            }
            SavedEv::Retransmit { dom, port, seq } => {
                w.u8(12);
                w.u32(dom);
                w.u32(port);
                w.u64(seq);
            }
            SavedEv::HotplugAborted { dom } => {
                w.u8(13);
                w.u32(dom);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> SavedEv {
        match r.u8() {
            0 => SavedEv::HvTick(r.u32()),
            1 => SavedEv::HvAcct,
            2 => SavedEv::ExtendTick,
            3 => SavedEv::SliceEnd {
                pcpu: r.u32(),
                gen: r.u64(),
            },
            4 => SavedEv::Plan {
                dom: r.u32(),
                vcpu: r.u32(),
            },
            5 => SavedEv::IpiDeliver {
                dom: r.u32(),
                vcpu: r.u32(),
            },
            6 => SavedEv::SleepWake {
                dom: r.u32(),
                tid: r.u32(),
            },
            7 => SavedEv::DaemonTimer { dom: r.u32() },
            8 => SavedEv::IoArrival {
                dom: r.u32(),
                port: r.u32(),
                items: r.u64(),
            },
            9 => SavedEv::NicDrained { dom: r.u32() },
            10 => SavedEv::HotplugDone {
                dom: r.u32(),
                vcpu: r.u32(),
                online: r.bool(),
            },
            11 => SavedEv::PortRecover {
                dom: r.u32(),
                port: r.u32(),
            },
            12 => SavedEv::Retransmit {
                dom: r.u32(),
                port: r.u32(),
                seq: r.u64(),
            },
            13 => SavedEv::HotplugAborted { dom: r.u32() },
            t => panic!("unknown machine event tag {t}"),
        }
    }
}

/// A per-VM in-flight event in migration-image form: the owning domain
/// id is stripped (the destination host re-maps the image onto its own
/// domain index) and wide payloads travel by value.
#[derive(Clone, Copy, Debug)]
enum VmEv {
    IpiDeliver { vcpu: u32 },
    SleepWake { tid: u32 },
    DaemonTimer,
    IoArrival { port: u32, items: u64 },
    NicDrained,
    HotplugDone { vcpu: u32, online: bool },
    PortRecover { port: u32 },
    Retransmit { port: u32, seq: u64 },
    HotplugAborted,
}

impl VmEv {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            VmEv::IpiDeliver { vcpu } => {
                w.u8(0);
                w.u32(vcpu);
            }
            VmEv::SleepWake { tid } => {
                w.u8(1);
                w.u32(tid);
            }
            VmEv::DaemonTimer => w.u8(2),
            VmEv::IoArrival { port, items } => {
                w.u8(3);
                w.u32(port);
                w.u64(items);
            }
            VmEv::NicDrained => w.u8(4),
            VmEv::HotplugDone { vcpu, online } => {
                w.u8(5);
                w.u32(vcpu);
                w.bool(online);
            }
            VmEv::PortRecover { port } => {
                w.u8(6);
                w.u32(port);
            }
            VmEv::Retransmit { port, seq } => {
                w.u8(7);
                w.u32(port);
                w.u64(seq);
            }
            VmEv::HotplugAborted => w.u8(8),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> VmEv {
        match r.u8() {
            0 => VmEv::IpiDeliver { vcpu: r.u32() },
            1 => VmEv::SleepWake { tid: r.u32() },
            2 => VmEv::DaemonTimer,
            3 => VmEv::IoArrival {
                port: r.u32(),
                items: r.u64(),
            },
            4 => VmEv::NicDrained,
            5 => VmEv::HotplugDone {
                vcpu: r.u32(),
                online: r.bool(),
            },
            6 => VmEv::PortRecover { port: r.u32() },
            7 => VmEv::Retransmit {
                port: r.u32(),
                seq: r.u64(),
            },
            8 => VmEv::HotplugAborted,
            t => panic!("unknown vm event tag {t}"),
        }
    }
}

/// Where a drained event goes when one domain is being extracted.
enum VmSplit {
    /// Host-wide or other-domain event: stays on the source machine.
    Host(SavedEv),
    /// Belongs to the extracted domain: travels in the migration image.
    Vm(VmEv),
    /// Belongs to the extracted domain but is derived state the install
    /// path recomputes (plan events are re-armed by the wake routing).
    Dropped,
}

fn split_for(ev: SavedEv, di: u32) -> VmSplit {
    match ev {
        SavedEv::HvTick(_) | SavedEv::HvAcct | SavedEv::ExtendTick | SavedEv::SliceEnd { .. } => {
            VmSplit::Host(ev)
        }
        SavedEv::Plan { dom, .. } if dom == di => VmSplit::Dropped,
        SavedEv::IpiDeliver { dom, vcpu } if dom == di => VmSplit::Vm(VmEv::IpiDeliver { vcpu }),
        SavedEv::SleepWake { dom, tid } if dom == di => VmSplit::Vm(VmEv::SleepWake { tid }),
        SavedEv::DaemonTimer { dom } if dom == di => VmSplit::Vm(VmEv::DaemonTimer),
        SavedEv::IoArrival { dom, port, items } if dom == di => {
            VmSplit::Vm(VmEv::IoArrival { port, items })
        }
        SavedEv::NicDrained { dom } if dom == di => VmSplit::Vm(VmEv::NicDrained),
        SavedEv::HotplugDone { dom, vcpu, online } if dom == di => {
            VmSplit::Vm(VmEv::HotplugDone { vcpu, online })
        }
        SavedEv::PortRecover { dom, port } if dom == di => VmSplit::Vm(VmEv::PortRecover { port }),
        SavedEv::Retransmit { dom, port, seq } if dom == di => {
            VmSplit::Vm(VmEv::Retransmit { port, seq })
        }
        SavedEv::HotplugAborted { dom } if dom == di => VmSplit::Vm(VmEv::HotplugAborted),
        other => VmSplit::Host(other),
    }
}

/// Serializes one domain's mutable state (used by both whole-machine
/// checkpoints and per-VM migration images). The scaling mode, hotplug
/// model, weight, and daemon/kernel configs are structural: restore
/// targets a twin built by the same setup code.
fn save_guest(w: &mut SnapWriter, g: &GuestDomain) {
    let GuestDomain {
        kernel,
        evtchn,
        port_pending,
        scaling: _,
        daemon,
        channel,
        hotplug: _,
        active_trace,
        io_arrivals,
        io_deliveries,
        nic_completions,
        nic_busy_until,
        nic_seq,
        exited_threads,
        doorbells,
        retx_handles,
        failsafe,
        hotplug_retry,
        ipis_coalesced,
        freeze_gate,
        weight: _,
    } = g;
    w.section("guest");
    kernel.save(w);
    evtchn.save(w);
    w.seq(port_pending.iter(), |w, &(q, items)| {
        w.usize(q.0);
        w.u64(items);
    });
    daemon.save(w);
    channel.save(w);
    w.seq(active_trace.iter(), |w, &(t, n)| {
        w.time(t);
        w.usize(n);
    });
    w.seq(io_arrivals.iter(), |w, &t| w.time(t));
    w.seq(io_deliveries.iter(), |w, &t| w.time(t));
    w.seq(nic_completions.iter(), |w, &t| w.time(t));
    w.time(*nic_busy_until);
    w.u64(*nic_seq);
    w.u64(*exited_threads);
    w.seq(doorbells.iter(), |w, d| d.save(w));
    // Armed-retransmit presence per port: the handles themselves are
    // rebuilt from the requeued events; the bools make non-destructive
    // dirty probes ([`Machine::vm_image_bytes`]) see timer-arm churn.
    w.seq(retx_handles.iter(), |w, h| w.bool(h.is_some()));
    failsafe.save(w);
    hotplug_retry.save(w);
    w.u64(*ipis_coalesced);
    freeze_gate.save(w);
}

/// Restores state written by [`save_guest`] into a structural twin.
fn load_guest(r: &mut SnapReader<'_>, g: &mut GuestDomain) {
    r.section("guest");
    g.kernel.restore(r);
    g.evtchn.restore(r);
    let pending: Vec<(usize, u64)> = r.seq(|r| (r.usize(), r.u64()));
    assert_eq!(
        pending.len(),
        g.port_pending.len(),
        "port count differs from twin"
    );
    for (slot, (q, items)) in g.port_pending.iter_mut().zip(pending) {
        assert_eq!(slot.0 .0, q, "port/queue binding differs from twin");
        slot.1 = items;
    }
    g.daemon.load(r);
    g.channel = VscaleChannel::load(r);
    g.active_trace = r.seq(|r| (r.time(), r.usize()));
    g.io_arrivals = r.seq(|r| r.time());
    g.io_deliveries = r.seq(|r| r.time());
    g.nic_completions = r.seq(|r| r.time());
    g.nic_busy_until = r.time();
    g.nic_seq = r.u64();
    g.exited_threads = r.u64();
    let doorbells: Vec<DoorbellLink> = r.seq(DoorbellLink::load);
    assert_eq!(
        doorbells.len(),
        g.doorbells.len(),
        "doorbell count differs from twin"
    );
    g.doorbells = doorbells;
    // Presence bools are advisory (handles are rebuilt from requeued
    // events); consume and discard them.
    let armed = r.seq(|r| r.bool());
    assert_eq!(
        armed.len(),
        g.retx_handles.len(),
        "retransmit-port count differs from twin"
    );
    for h in &mut g.retx_handles {
        *h = None;
    }
    g.failsafe.load(r);
    g.hotplug_retry.load(r);
    g.ipis_coalesced = r.u64();
    g.freeze_gate.load(r);
}

impl<S: HypervisorSched> Machine<S> {
    /// Asserts the machine sits at an event boundary: every scratch
    /// buffer parked empty and no un-surfaced structured error. This is
    /// the only state in which images are well-defined — snapshots are
    /// taken between `run_until` calls, never mid-dispatch.
    fn assert_at_rest(&self) {
        assert!(
            self.sched_buf.is_empty()
                && self.ops_buf.is_empty()
                && self.dirty_buf.is_empty()
                && self.fx_buf.is_empty()
                && self.run_fx_buf.is_empty()
                && self.daemon_fx_buf.is_empty()
                && self.ports_buf.is_empty()
                && self.ipi_buf.is_empty(),
            "snapshot taken mid-dispatch: scratch buffers not at rest"
        );
        assert!(
            self.fault_error.is_none(),
            "snapshot taken with an unsurfaced simulation error pending"
        );
    }

    /// Drains every queued event in exact pop order, resolving wide
    /// payloads by value. All outstanding [`EventHandle`]s die with the
    /// drain, so the plan/retransmit handle tables are cleared here;
    /// [`Machine::requeue_events`] rebuilds them.
    fn drain_events(&mut self) -> Vec<(SimTime, SavedEv)> {
        let drained = self.queue.drain_ordered();
        for h in self.plan_handles.values_mut() {
            *h = None;
        }
        for g in &mut self.guests {
            for h in &mut g.retx_handles {
                *h = None;
            }
        }
        let mut out = Vec::with_capacity(drained.len());
        for (t, ev) in drained {
            let sev = match ev {
                Ev::HvTick(p) => SavedEv::HvTick(p),
                Ev::HvAcct => SavedEv::HvAcct,
                Ev::ExtendTick => SavedEv::ExtendTick,
                Ev::SliceEnd { pcpu, gen } => SavedEv::SliceEnd {
                    pcpu,
                    gen: self.wide.take(gen),
                },
                Ev::Plan { dom, vcpu } => SavedEv::Plan { dom, vcpu },
                Ev::IpiDeliver { dom, vcpu } => SavedEv::IpiDeliver { dom, vcpu },
                Ev::SleepWake { dom, tid } => SavedEv::SleepWake { dom, tid },
                Ev::DaemonTimer { dom } => SavedEv::DaemonTimer { dom },
                Ev::IoArrival { dom, port, items } => SavedEv::IoArrival {
                    dom,
                    port,
                    items: self.wide.take(items),
                },
                Ev::NicDrained { dom } => SavedEv::NicDrained { dom },
                Ev::HotplugDone { dom, vcpu, online } => SavedEv::HotplugDone { dom, vcpu, online },
                Ev::PortRecover { dom, port } => SavedEv::PortRecover { dom, port },
                Ev::Retransmit { dom, port, seq } => SavedEv::Retransmit {
                    dom,
                    port,
                    seq: self.wide.take(seq),
                },
                Ev::HotplugAborted { dom } => SavedEv::HotplugAborted { dom },
            };
            out.push((t, sev));
        }
        // Every slot was taken: reset the pool so the rebuilt queue's
        // slot assignment is a pure function of the event list.
        self.wide = WidePool::default();
        out
    }

    /// Reinserts saved events in order — insertion order reproduces pop
    /// order exactly — re-interning wide payloads and rebuilding the
    /// cancellable handle tables. Times below `floor` clamp to it
    /// (relative order is preserved by the `(time, seq)` tie-break).
    fn requeue_events(&mut self, evs: Vec<(SimTime, SavedEv)>, floor: SimTime) {
        for (t, sev) in evs {
            let t = t.max(floor);
            match sev {
                SavedEv::HvTick(p) => {
                    self.queue.schedule(t, Ev::HvTick(p));
                }
                SavedEv::HvAcct => {
                    self.queue.schedule(t, Ev::HvAcct);
                }
                SavedEv::ExtendTick => {
                    self.queue.schedule(t, Ev::ExtendTick);
                }
                SavedEv::SliceEnd { pcpu, gen } => {
                    let gen = self.wide.intern(gen);
                    self.queue.schedule(t, Ev::SliceEnd { pcpu, gen });
                }
                SavedEv::Plan { dom, vcpu } => {
                    let h = self.queue.schedule(t, Ev::Plan { dom, vcpu });
                    let gv = GlobalVcpu::new(DomId(dom as usize), VcpuId(vcpu as usize));
                    self.plan_handles[gv] = Some(h);
                }
                SavedEv::IpiDeliver { dom, vcpu } => {
                    self.queue.schedule(t, Ev::IpiDeliver { dom, vcpu });
                }
                SavedEv::SleepWake { dom, tid } => {
                    self.queue.schedule(t, Ev::SleepWake { dom, tid });
                }
                SavedEv::DaemonTimer { dom } => {
                    self.queue.schedule(t, Ev::DaemonTimer { dom });
                }
                SavedEv::IoArrival { dom, port, items } => {
                    let items = self.wide.intern(items);
                    self.queue.schedule(t, Ev::IoArrival { dom, port, items });
                }
                SavedEv::NicDrained { dom } => {
                    self.queue.schedule(t, Ev::NicDrained { dom });
                }
                SavedEv::HotplugDone { dom, vcpu, online } => {
                    self.queue
                        .schedule(t, Ev::HotplugDone { dom, vcpu, online });
                }
                SavedEv::PortRecover { dom, port } => {
                    self.queue.schedule(t, Ev::PortRecover { dom, port });
                }
                SavedEv::Retransmit { dom, port, seq } => {
                    let widx = self.wide.intern(seq);
                    let h = self.queue.schedule(
                        t,
                        Ev::Retransmit {
                            dom,
                            port,
                            seq: widx,
                        },
                    );
                    self.guests[dom as usize].retx_handles[port as usize] = Some((h, widx));
                }
                SavedEv::HotplugAborted { dom } => {
                    self.queue.schedule(t, Ev::HotplugAborted { dom });
                }
            }
        }
    }

    /// Serializes the complete machine — hypervisor, every guest, both
    /// RNG streams, the fault plan position, the watchdog registers, and
    /// the full event wheel in pop order — into a versioned byte image.
    /// Non-destructive: the machine continues running unchanged, and a
    /// run resumed from the image by [`Machine::restore`] on a structural
    /// twin is byte-identical to one that never checkpointed.
    ///
    /// The trace ring is deliberately excluded: it is diagnostic output,
    /// not simulation state, and never feeds back into behavior.
    ///
    /// Must be called at an event boundary (between `run_until` calls).
    pub fn checkpoint(&mut self) -> Vec<u8> {
        self.assert_at_rest();
        let evs = self.drain_events();
        let mut w = SnapWriter::new();
        w.section("machine");
        w.usize(self.config.n_pcpus);
        w.usize(self.guests.len());
        w.time(self.queue.now());
        w.u64(self.queue.delivered());
        for s in self.rng.state() {
            w.u64(s);
        }
        for s in self.tick_rng.state() {
            w.u64(s);
        }
        w.u64(self.ticks_jittered);
        self.hv.save(&mut w);
        w.seq(self.guests.iter(), save_guest);
        w.opt(self.fault_plan.as_deref(), |w, p| p.save(w));
        w.time(self.wd_instant);
        w.u64(self.wd_instant_events);
        w.u64(self.wd_progress_fp.0);
        w.u64(self.wd_progress_fp.1);
        w.time(self.wd_progress_at);
        w.section("events");
        w.seq(evs.iter(), |w, (t, e)| {
            w.time(*t);
            e.save(w);
        });
        let image = w.finish();
        // Rebuild our own wheel: reinsertion in pop order reproduces the
        // original delivery order, so the checkpoint is invisible.
        self.requeue_events(evs, SimTime::ZERO);
        image
    }

    /// Restores a [`Machine::checkpoint`] image into this machine, which
    /// must be a structural twin: same config, same domains in creation
    /// order, same spawned threads/queues/ports. All mutable state —
    /// including the clock — is overwritten; subsequent execution is
    /// byte-identical to the run the image was taken from.
    ///
    /// # Panics
    ///
    /// Panics on a malformed image or any structural mismatch.
    pub fn restore(&mut self, image: &[u8]) {
        self.assert_at_rest();
        let mut r = SnapReader::open(image).expect("valid machine image");
        r.section("machine");
        assert_eq!(
            r.usize(),
            self.config.n_pcpus,
            "pCPU count differs from twin"
        );
        assert_eq!(
            r.usize(),
            self.guests.len(),
            "domain count differs from twin"
        );
        let now = r.time();
        let delivered = r.u64();
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = r.u64();
        }
        self.rng = SimRng::from_state(s);
        for v in &mut s {
            *v = r.u64();
        }
        self.tick_rng = SimRng::from_state(s);
        self.ticks_jittered = r.u64();
        self.hv.load(&mut r);
        let n = r.usize();
        assert_eq!(n, self.guests.len(), "domain count differs from twin");
        for g in &mut self.guests {
            load_guest(&mut r, g);
        }
        let has_plan = r.bool();
        if has_plan {
            let plan = self.fault_plan.as_deref_mut().expect(
                "image carries a fault plan: call set_fault_plan with the original \
                 config before restore",
            );
            plan.load(&mut r);
        } else {
            assert!(
                self.fault_plan.is_none(),
                "twin has a fault plan but the image has none"
            );
        }
        self.wd_instant = r.time();
        self.wd_instant_events = r.u64();
        self.wd_progress_fp = (r.u64(), r.u64());
        self.wd_progress_at = r.time();
        r.section("events");
        let evs: Vec<(SimTime, SavedEv)> = r.seq(|r| (r.time(), SavedEv::load(r)));
        assert!(r.exhausted(), "machine image has trailing bytes");
        self.queue = EventQueue::with_clock(now, delivered);
        self.wide = WidePool::default();
        for h in self.plan_handles.values_mut() {
            *h = None;
        }
        for g in &mut self.guests {
            for h in &mut g.retx_handles {
                *h = None;
            }
        }
        self.requeue_events(evs, SimTime::ZERO);
        self.fault_error = None;
    }

    /// A non-destructive serialization of one domain's mutable state —
    /// the pre-copy dirty probe. Successive probes are hashed/diffed by
    /// the migration engine to estimate the dirty rate; the bytes are
    /// *never* restored (in-flight wheel events are not included, so the
    /// probe is cheap and needs only `&self`).
    pub fn vm_image_bytes(&self, dom: DomId) -> Vec<u8> {
        let mut w = SnapWriter::new();
        let export = self.hv.export_domain(dom);
        w.seq(export.vcpus.iter(), |w, v| {
            w.bool(v.frozen);
            w.bool(v.runnable);
            w.i64(v.credit);
        });
        save_guest(&mut w, &self.guests[dom.index()]);
        w.finish()
    }

    /// Requests injected for `dom` that are still riding the timing
    /// wheel (scheduled `IoArrival` items not yet landed in a queue).
    /// Together with the I/O logs this counts the domain's exact
    /// in-flight request cohort — what a cold restore will re-serve and
    /// the fleet ledger must therefore discount to stay exactly-once.
    ///
    /// Must be called at an event boundary.
    pub fn pending_io_items(&mut self, dom: DomId) -> u64 {
        self.assert_at_rest();
        let di = dom.index() as u32;
        let evs = self.drain_events();
        let items = evs
            .iter()
            .map(|(_, ev)| match *ev {
                SavedEv::IoArrival { dom: d, items, .. } if d == di => items,
                _ => 0,
            })
            .sum();
        self.requeue_events(evs, SimTime::ZERO);
        items
    }

    /// Stop-and-copy extraction: detaches `dom` from this host and
    /// returns its complete migration image. After this call the domain
    /// is an inert shell — every vCPU parked and frozen, no in-flight
    /// events, its pCPUs already re-granted to other domains. The shell
    /// stays restorable: aborting the migration means re-installing the
    /// returned image right here ([`Machine::install_vm`]), which is the
    /// rollback path.
    ///
    /// Must be called at an event boundary.
    pub fn extract_vm(&mut self, dom: DomId) -> Vec<u8> {
        self.assert_at_rest();
        let now = self.queue.now();
        // Capture per-vCPU scheduler state (runnable/frozen/credit)
        // before the detach destroys it.
        let export = self.hv.export_domain(dom);
        // Park every vCPU. The Desched events route through
        // `kernel.vcpu_stop`, leaving the kernel in a consistent paused
        // state; freed pCPUs are re-granted to other domains normally.
        self.hv_and_drain(now, |hv, ev| hv.detach_domain(dom, now, ev));
        // Split the wheel: host and other-domain events stay, this
        // domain's travel in the image (its plan events are derived
        // state, recomputed by the install-side wake routing).
        let evs = self.drain_events();
        let di = compact(dom.index());
        let mut keep = Vec::with_capacity(evs.len());
        let mut taken: Vec<(SimTime, VmEv)> = Vec::new();
        for (t, ev) in evs {
            match split_for(ev, di) {
                VmSplit::Host(ev) => keep.push((t, ev)),
                VmSplit::Vm(v) => taken.push((t, v)),
                VmSplit::Dropped => {}
            }
        }
        self.requeue_events(keep, SimTime::ZERO);
        let mut w = SnapWriter::new();
        w.section("vmimg");
        w.time(now);
        w.seq(export.vcpus.iter(), |w, v| {
            w.bool(v.frozen);
            w.bool(v.runnable);
            w.i64(v.credit);
        });
        save_guest(&mut w, &self.guests[dom.index()]);
        w.seq(taken.iter(), |w, (t, e)| {
            w.time(*t);
            e.save(w);
        });
        w.finish()
    }

    /// Installs a migration image produced by [`Machine::extract_vm`]
    /// into domain `dom` of this host. The domain must be a structural
    /// twin of the extracted one (same spec and spawned workload) with no
    /// in-flight events of its own — either a freshly built receiving
    /// shell or the still-detached source domain (the rollback path).
    ///
    /// In-flight events are requeued at their original times; anything
    /// already due (the transfer took wall-clock simulated time) fires
    /// immediately, in preserved relative order. Runnable vCPUs are woken
    /// through the scheduler's normal wake path, so dispatch, slice
    /// arming, and pending-port delivery all happen exactly as for any
    /// other wake — nothing is replayed twice and nothing is lost.
    pub fn install_vm(&mut self, dom: DomId, image: &[u8]) {
        self.assert_at_rest();
        let now = self.queue.now();
        let mut r = SnapReader::open(image).expect("valid vm image");
        r.section("vmimg");
        let _captured_at = r.time();
        let export = DomSchedExport {
            vcpus: r.seq(|r| VcpuSchedExport {
                frozen: r.bool(),
                runnable: r.bool(),
                credit: r.i64(),
            }),
        };
        load_guest(&mut r, &mut self.guests[dom.index()]);
        let evs: Vec<(SimTime, VmEv)> = r.seq(|r| (r.time(), VmEv::load(r)));
        assert!(r.exhausted(), "vm image has trailing bytes");
        let di = compact(dom.index());
        for (t, e) in evs {
            let t = t.max(now);
            match e {
                VmEv::IpiDeliver { vcpu } => {
                    self.queue.schedule(t, Ev::IpiDeliver { dom: di, vcpu });
                }
                VmEv::SleepWake { tid } => {
                    self.queue.schedule(t, Ev::SleepWake { dom: di, tid });
                }
                VmEv::DaemonTimer => {
                    self.queue.schedule(t, Ev::DaemonTimer { dom: di });
                }
                VmEv::IoArrival { port, items } => {
                    let items = self.wide.intern(items);
                    self.queue.schedule(
                        t,
                        Ev::IoArrival {
                            dom: di,
                            port,
                            items,
                        },
                    );
                }
                VmEv::NicDrained => {
                    self.queue.schedule(t, Ev::NicDrained { dom: di });
                }
                VmEv::HotplugDone { vcpu, online } => {
                    self.queue.schedule(
                        t,
                        Ev::HotplugDone {
                            dom: di,
                            vcpu,
                            online,
                        },
                    );
                }
                VmEv::PortRecover { port } => {
                    self.queue.schedule(t, Ev::PortRecover { dom: di, port });
                }
                VmEv::Retransmit { port, seq } => {
                    let widx = self.wide.intern(seq);
                    let h = self.queue.schedule(
                        t,
                        Ev::Retransmit {
                            dom: di,
                            port,
                            seq: widx,
                        },
                    );
                    self.guests[dom.index()].retx_handles[port as usize] = Some((h, widx));
                }
                VmEv::HotplugAborted => {
                    self.queue.schedule(t, Ev::HotplugAborted { dom: di });
                }
            }
        }
        // Wake what was runnable at extraction; Run events route through
        // vcpu_start, pending-port delivery, slice arming, and replan.
        self.hv_and_drain(now, |hv, ev| hv.import_domain(dom, &export, now, ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use guest_kernel::thread::{OneShot, Script, ThreadAction, ThreadKind};

    fn compute_ms(ms: u64) -> Box<OneShot> {
        Box::new(OneShot::new(SimDuration::from_ms(ms)))
    }

    /// The tentpole cache-line budget: the compact event payload is at
    /// most 16 bytes, and a whole event-queue slab node — payload plus
    /// the wheel's time/seq/generation/level bookkeeping — fits in one
    /// 64-byte cache line.
    #[test]
    fn event_payload_fits_one_cache_line() {
        assert!(std::mem::size_of::<Ev>() <= 16, "Ev grew past 16 bytes");
        assert!(
            EventQueue::<Ev>::node_footprint() <= 64,
            "slab node grew past one cache line: {} bytes",
            EventQueue::<Ev>::node_footprint()
        );
    }

    /// The wide-word side table recycles freed slots, so the steady state
    /// (intern at schedule, take at fire) never grows the pool.
    #[test]
    fn wide_pool_reuses_freed_slots() {
        let mut pool = WidePool::default();
        let a = pool.intern(7);
        let b = pool.intern(9);
        assert_ne!(a, b);
        assert_eq!(pool.take(a), 7);
        let c = pool.intern(11);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(pool.slots.len(), 2, "steady state does not grow the pool");
        assert_eq!((pool.take(b), pool.take(c)), (9, 11));
    }

    #[test]
    fn single_domain_runs_to_completion() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            ..MachineConfig::default()
        });
        let d = m.add_domain(DomainSpec::fixed(2));
        let t0 = m.guest_mut(d).spawn(ThreadKind::User, compute_ms(50));
        let t1 = m.guest_mut(d).spawn(ThreadKind::User, compute_ms(50));
        m.start_thread(d, t0);
        m.start_thread(d, t1);
        let done = m.run_until_exited(d, SimTime::from_secs(5));
        let done = done.expect("workload finishes");
        // Two vCPUs on two pCPUs: ~50 ms wall, small overheads.
        assert!(done >= SimTime::from_ms(50));
        assert!(done < SimTime::from_ms(60), "took {done}");
        let st = m.domain_stats(d);
        assert!(st.run_total >= SimDuration::from_ms(100));
        assert_eq!(st.wait_total, SimDuration::ZERO);
    }

    #[test]
    fn overcommit_halves_throughput_and_accumulates_waiting() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 1,
            ..MachineConfig::default()
        });
        let a = m.add_domain(DomainSpec::fixed(1));
        let b = m.add_domain(DomainSpec::fixed(1));
        let ta = m.guest_mut(a).spawn(ThreadKind::User, compute_ms(100));
        let tb = m.guest_mut(b).spawn(ThreadKind::User, compute_ms(100));
        m.start_thread(a, ta);
        m.start_thread(b, tb);
        m.run_until(SimTime::from_secs(5));
        assert!(m.guest(a).all_exited());
        assert!(m.guest(b).all_exited());
        // 200 ms of work on one pCPU: finishes no earlier than 200 ms.
        assert!(m.now() >= SimTime::from_ms(200));
        // Each domain waited roughly as long as it ran.
        let sa = m.domain_stats(a);
        assert!(
            sa.wait_total >= SimDuration::from_ms(60),
            "waiting {} too small",
            sa.wait_total
        );
    }

    #[test]
    fn fair_share_is_proportional_to_weight() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 1,
            ..MachineConfig::default()
        });
        let heavy = m.add_domain(DomainSpec::fixed(1).with_weight(512));
        let light = m.add_domain(DomainSpec::fixed(1).with_weight(256));
        let th = m
            .guest_mut(heavy)
            .spawn(ThreadKind::User, compute_ms(10_000));
        let tl = m
            .guest_mut(light)
            .spawn(ThreadKind::User, compute_ms(10_000));
        m.start_thread(heavy, th);
        m.start_thread(light, tl);
        m.run_until(SimTime::from_secs(3));
        let rh = m.domain_stats(heavy).run_total.as_ms_f64();
        let rl = m.domain_stats(light).run_total.as_ms_f64();
        let ratio = rh / rl;
        assert!(
            (1.6..2.4).contains(&ratio),
            "2:1 weights should give ~2:1 time, got {ratio:.2} ({rh:.0} vs {rl:.0})"
        );
    }

    #[test]
    fn vscale_shrinks_under_competition_and_grows_back() {
        // A 4-vCPU vScale VM shares 2 pCPUs with a competing 2-vCPU VM.
        // Its extendability is ~1 pCPU, so the daemon should freeze down
        // to 1-2 active vCPUs; when the competitor exits, it should grow
        // back to its fair use of both pCPUs.
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(SystemConfig::VScale.domain_spec(4));
        let bg = m.add_domain(DomainSpec::fixed(2));
        for _ in 0..4 {
            let t = m.guest_mut(vm).spawn(ThreadKind::User, compute_ms(2_000));
            m.start_thread(vm, t);
        }
        for _ in 0..2 {
            let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(400));
            m.start_thread(bg, t);
        }
        m.run_until(SimTime::from_ms(300));
        let active_mid = m.guest(vm).active_vcpus();
        assert!(
            active_mid <= 2,
            "with a busy competitor the VM should shrink, still at {active_mid}"
        );
        let st = m.domain_stats(vm);
        assert!(st.daemon_reads > 0, "daemon must be polling");
        assert!(st.reconfigs >= 2, "freezes happened");
        // Let the background VM finish; the vScale VM should grow back.
        m.run_until(SimTime::from_ms(1_200));
        let active_late = m.guest(vm).active_vcpus();
        assert!(
            active_late >= 2,
            "after the competitor exits the VM should grow, still at {active_late}"
        );
        // The trace records the changes (Figure 8 data).
        assert!(m.active_trace(vm).len() >= 3);
    }

    #[test]
    fn fixed_domain_never_reconfigures() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 1,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(DomainSpec::fixed(4));
        let bg = m.add_domain(DomainSpec::fixed(2));
        for _ in 0..4 {
            let t = m.guest_mut(vm).spawn(ThreadKind::User, compute_ms(200));
            m.start_thread(vm, t);
        }
        let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(200));
        m.start_thread(bg, t);
        m.run_until(SimTime::from_ms(500));
        assert_eq!(m.guest(vm).active_vcpus(), 4);
        assert_eq!(m.domain_stats(vm).reconfigs, 0);
    }

    #[test]
    fn io_requests_flow_through_irq_worker_and_nic() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            ..MachineConfig::default()
        });
        let d = m.add_domain(DomainSpec::fixed(2));
        let q = m.guest_mut(d).new_io_queue();
        let port = m.bind_io_port(d, q, VcpuId(0));
        let worker = m.guest_mut(d).spawn(
            ThreadKind::User,
            Box::new(Script::new(vec![
                ThreadAction::IoWait(q),
                ThreadAction::Compute(SimDuration::from_us(50)),
                ThreadAction::NicSend { bytes: 16_384 },
                ThreadAction::IoWait(q),
                ThreadAction::Compute(SimDuration::from_us(50)),
                ThreadAction::NicSend { bytes: 16_384 },
            ])),
        );
        m.start_thread(d, worker);
        m.inject_io(d, port, SimTime::from_ms(1), 1);
        m.inject_io(d, port, SimTime::from_ms(2), 1);
        m.run_until_exited(d, SimTime::from_secs(1))
            .expect("worker finishes");
        // Let the in-flight NIC transmission drain.
        let drain = m.now() + SimDuration::from_ms(1);
        m.run_until(drain);
        let (arr, del, nic) = m.io_logs(d);
        assert_eq!(arr.len(), 2);
        assert_eq!(del.len(), 2);
        assert_eq!(nic.len(), 2);
        // Uncontended: delivery follows arrival within tens of µs.
        for (a, dl) in arr.iter().zip(del) {
            let lat = dl.since(*a);
            assert!(lat < SimDuration::from_ms(1), "delivery latency {lat}");
        }
        // 16 KB on 1 GbE needs ~131 µs of wire time after processing.
        assert!(nic[0].since(del[0]) >= SimDuration::from_us(100));
    }

    #[test]
    fn irq_redirects_away_from_frozen_vcpu() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            ..MachineConfig::default()
        });
        let d = m.add_domain(SystemConfig::VScale.domain_spec(2));
        let bg = m.add_domain(DomainSpec::fixed(2));
        // Busy competitor forces the vScale VM to shrink to 1 vCPU.
        for _ in 0..2 {
            let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(2_000));
            m.start_thread(bg, t);
        }
        let q = m.guest_mut(d).new_io_queue();
        let port = m.bind_io_port(d, q, VcpuId(1)); // Bound to the one that will freeze.
        let worker = m.guest_mut(d).spawn(
            ThreadKind::User,
            Box::new(Script::new(vec![
                ThreadAction::Compute(SimDuration::from_ms(100)),
                ThreadAction::IoWait(q),
                ThreadAction::Compute(SimDuration::from_us(50)),
            ])),
        );
        m.start_thread(d, worker);
        m.run_until(SimTime::from_ms(150));
        assert_eq!(m.guest(d).active_vcpus(), 1, "VM should have shrunk");
        assert!(m.guest(d).freeze_mask().is_frozen(VcpuId(1)));
        // Inject a request bound to the frozen vCPU1: must be redirected.
        m.inject_io(d, port, m.now() + SimDuration::from_ms(1), 1);
        m.run_until_exited(d, SimTime::from_secs(2))
            .expect("worker must still get its I/O");
        assert_eq!(m.guest(d).io_irqs(VcpuId(1)), 0, "frozen vCPU got the IRQ");
    }

    #[test]
    fn deterministic_replay_of_a_contended_run() {
        let run = || {
            let mut m = Machine::new(MachineConfig {
                n_pcpus: 2,
                seed: 99,
                ..MachineConfig::default()
            });
            let vm = m.add_domain(SystemConfig::VScale.domain_spec(4));
            let bg = m.add_domain(DomainSpec::fixed(2));
            for _ in 0..4 {
                let t = m.guest_mut(vm).spawn(ThreadKind::User, compute_ms(300));
                m.start_thread(vm, t);
            }
            for _ in 0..2 {
                let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(200));
                m.start_thread(bg, t);
            }
            m.run_until(SimTime::from_secs(2));
            let st = m.domain_stats(vm);
            (
                m.now(),
                st.wait_total,
                st.run_total,
                st.reconfigs,
                m.guest(vm).stats().context_switches,
            )
        };
        assert_eq!(run(), run());
    }

    /// Checkpoint mid-run, restore into a structural twin, run the same
    /// remainder: every statistic matches the uninterrupted run and a
    /// second checkpoint at the end is byte-identical — the snapshot is
    /// exact, not merely approximate.
    #[test]
    fn checkpoint_restore_is_byte_identical() {
        let build = || {
            let mut m = Machine::new(MachineConfig {
                n_pcpus: 2,
                seed: 99,
                ..MachineConfig::default()
            });
            let vm = m.add_domain(SystemConfig::VScale.domain_spec(4));
            let bg = m.add_domain(DomainSpec::fixed(2));
            for _ in 0..4 {
                let t = m.guest_mut(vm).spawn(ThreadKind::User, compute_ms(300));
                m.start_thread(vm, t);
            }
            for _ in 0..2 {
                let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(200));
                m.start_thread(bg, t);
            }
            (m, vm)
        };
        // Uninterrupted reference run, checkpointing along the way (the
        // checkpoint itself must be invisible to the source).
        let (mut a, vm_a) = build();
        a.run_until(SimTime::from_ms(700));
        let t1 = a.now();
        let image = a.checkpoint();
        a.run_until(SimTime::from_secs(2));
        let final_a = a.checkpoint();

        // Restore into a twin and run the same remainder.
        let (mut b, vm_b) = build();
        b.restore(&image);
        assert_eq!(b.now(), t1, "restore resumes at the checkpoint clock");
        b.run_until(SimTime::from_secs(2));
        let final_b = b.checkpoint();

        let sa = a.domain_stats(vm_a);
        let sb = b.domain_stats(vm_b);
        assert_eq!(
            (sa.wait_total, sa.run_total, sa.reconfigs),
            (sb.wait_total, sb.run_total, sb.reconfigs),
            "restored run diverged from the uninterrupted run"
        );
        assert_eq!(
            final_a, final_b,
            "end-state checkpoints differ after restore-then-run"
        );
    }

    /// The migration abort path: stop-and-copy a VM out, then install the
    /// image straight back into the source. No work is lost and the VM
    /// runs to completion; while detached it makes no progress.
    #[test]
    fn extract_then_reinstall_rolls_back_without_losing_work() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            seed: 7,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(DomainSpec::fixed(2));
        let bg = m.add_domain(DomainSpec::fixed(1));
        for _ in 0..2 {
            let t = m.guest_mut(vm).spawn(ThreadKind::User, compute_ms(150));
            m.start_thread(vm, t);
        }
        let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(100));
        m.start_thread(bg, t);
        m.run_until(SimTime::from_ms(60));
        assert!(!m.guest(vm).all_exited());
        let run_before = m.domain_stats(vm).run_total;
        let img = m.extract_vm(vm);
        // Detached: the background VM keeps running, the extracted one
        // is inert.
        m.run_until(SimTime::from_ms(90));
        assert_eq!(
            m.domain_stats(vm).run_total,
            run_before,
            "a detached VM must not make progress"
        );
        m.install_vm(vm, &img);
        m.run_until(SimTime::from_secs(2));
        assert!(m.guest(vm).all_exited(), "rolled-back VM finishes its work");
        assert!(m.guest(bg).all_exited());
        assert!(
            m.domain_stats(vm).run_total >= SimDuration::from_ms(300),
            "all compute accounted for after rollback"
        );
    }

    #[test]
    fn sleeping_guest_consumes_no_cpu() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 1,
            ..MachineConfig::default()
        });
        let d = m.add_domain(DomainSpec::fixed(1));
        let t = m.guest_mut(d).spawn(
            ThreadKind::User,
            Box::new(Script::new(vec![
                ThreadAction::Sleep(SimDuration::from_ms(100)),
                ThreadAction::Compute(SimDuration::from_ms(1)),
            ])),
        );
        m.start_thread(d, t);
        m.run_until_exited(d, SimTime::from_secs(1)).expect("done");
        let st = m.domain_stats(d);
        assert!(
            st.run_total < SimDuration::from_ms(5),
            "sleeping VM burned {}",
            st.run_total
        );
    }
}

#[cfg(test)]
mod pv_tests {
    use super::*;
    use crate::config::{DomainSpec, SystemConfig};
    use guest_kernel::thread::{Script, ThreadAction, ThreadKind};

    /// Kernel-lock contention with a preempted holder: plain ticket locks
    /// burn the contender's slices; pv-spinlock yields the vCPU to the
    /// hypervisor and gets kicked on release.
    fn run_klock_contention(pvlock: bool) -> (f64, u64, sim_core::time::SimDuration) {
        let cfg = if pvlock {
            SystemConfig::Pvlock
        } else {
            SystemConfig::Baseline
        };
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 1, // One pCPU: holder and waiter cannot run together.
            seed: 21,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(cfg.domain_spec(2));
        let l = m.guest_mut(vm).klocks.alloc();
        let holder = m.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(Script::new(vec![
                // Longer than one 30 ms slice: the holder is guaranteed
                // to be descheduled mid-critical-section.
                ThreadAction::KernelOp {
                    lock: l,
                    hold: SimDuration::from_ms(50),
                },
                ThreadAction::Compute(SimDuration::from_ms(1)),
            ])),
        );
        let waiter = m.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(Script::new(vec![
                ThreadAction::Compute(SimDuration::from_us(200)),
                ThreadAction::KernelOp {
                    lock: l,
                    hold: SimDuration::from_us(10),
                },
            ])),
        );
        m.start_thread(vm, holder);
        m.start_thread(vm, waiter);
        let end = m
            .run_until_exited(vm, SimTime::from_secs(10))
            .expect("finishes");
        (
            end.as_secs_f64(),
            m.guest(vm).stats().pv_yields,
            m.guest(vm).spin_waste(),
        )
    }

    #[test]
    fn pv_spinlock_yields_instead_of_spinning() {
        let (_plain_end, plain_yields, plain_waste) = run_klock_contention(false);
        let (_pv_end, pv_yields, pv_waste) = run_klock_contention(true);
        assert_eq!(plain_yields, 0);
        assert!(pv_yields >= 1, "pv waiter must yield");
        assert!(
            pv_waste < plain_waste,
            "pv-spinlock should spin less: {pv_waste} vs {plain_waste}"
        );
    }

    #[test]
    fn cap_through_machine_limits_a_hog() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            seed: 22,
            ..MachineConfig::default()
        });
        let capped = m.add_domain(DomainSpec {
            cap_pcpus: Some(0.5),
            ..DomainSpec::fixed(1)
        });
        let t = m.guest_mut(capped).spawn(
            ThreadKind::User,
            Box::new(guest_kernel::thread::OneShot::new(SimDuration::from_secs(
                5,
            ))),
        );
        m.start_thread(capped, t);
        m.run_until(SimTime::from_secs(2));
        let used = m.domain_stats(capped).run_total.as_secs_f64();
        assert!(
            used < 1.4,
            "cap 0.5 must bound use over 2 s to ~1 s, got {used:.2}"
        );
        assert!(used > 0.4, "capped domain still progresses, got {used:.2}");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::config::SystemConfig;
    use guest_kernel::thread::{OneShot, ThreadKind};

    #[test]
    fn trace_records_scheduling_and_reconfiguration() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            seed: 31,
            ..MachineConfig::default()
        });
        m.enable_trace(4096);
        let vm = m.add_domain(SystemConfig::VScale.domain_spec(4));
        let bg = m.add_domain(DomainSpec::fixed(2));
        for _ in 0..4 {
            let t = m.guest_mut(vm).spawn(
                ThreadKind::User,
                Box::new(OneShot::new(SimDuration::from_ms(400))),
            );
            m.start_thread(vm, t);
        }
        for _ in 0..2 {
            let t = m.guest_mut(bg).spawn(
                ThreadKind::User,
                Box::new(OneShot::new(SimDuration::from_ms(300))),
            );
            m.start_thread(bg, t);
        }
        m.run_until(SimTime::from_ms(400));
        let trace = m.trace();
        assert!(trace.filter("hv").count() > 10, "scheduling traced");
        assert!(
            trace.filter("daemon").count() >= 1,
            "reconfigurations traced: {}",
            trace.dump()
        );
        assert!(trace.dump().contains("run dom"));
    }

    #[test]
    fn trace_disabled_by_default_costs_nothing() {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 1,
            seed: 32,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(DomainSpec::fixed(1));
        let t = m.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(OneShot::new(SimDuration::from_ms(10))),
        );
        m.start_thread(vm, t);
        m.run_until_exited(vm, SimTime::from_secs(1)).expect("done");
        assert!(m.trace().is_empty());
        assert_eq!(m.trace().total_pushed(), 0);
    }
}
