//! The vScale user-space daemon.
//!
//! The daemon is a real-time-class process pinned to vCPU0 (the master
//! vCPU) so it executes deterministically and is never migrated. Every
//! period it reads the VM's CPU extendability through the vScale channel
//! (one syscall + one hypercall, ~0.91 µs) and compares the optimal vCPU
//! count against the number currently active. On a mismatch it instructs
//! the kernel balancer to freeze or unfreeze one vCPU at a time
//! (Algorithm 2), each master-side operation costing ~2.1 µs.
//!
//! Because the daemon runs *inside* the guest, its reactions are delayed
//! whenever vCPU0 itself is descheduled — the machine models this by
//! charging the daemon's work as kernel work on vCPU0, which only executes
//! while vCPU0 holds a pCPU.
//!
//! This module holds the daemon's per-domain state machine; the machine
//! drives it from timer events and kernel-work completions.

use sim_core::ids::VcpuId;
use sim_core::time::SimDuration;

/// Daemon tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Polling period (the paper's prototype recomputes extendability
    /// every 10 ms in the hypervisor; the daemon samples at the same
    /// cadence).
    pub period: SimDuration,
    /// Consecutive periods a *smaller* target must persist before the
    /// daemon freezes a vCPU (hysteresis against transient dips; growing
    /// is always immediate so ramp-ups exploit parallelism).
    pub shrink_patience: u32,
    /// Extendability (in pCPUs) beyond the current active count required
    /// before unfreezing another vCPU. Algorithm 1's ceiling grants a
    /// vCPU for *any* partial allocation; running a vCPU on a sliver of
    /// credit just drives the domain OVER and re-introduces the very
    /// scheduling delays vScale removes, so the daemon only activates the
    /// extra vCPU once it is at least this well funded.
    pub grow_margin: f64,
    /// Exponential smoothing factor applied to the 10 ms extendability
    /// samples before deciding (new = alpha·sample + (1−alpha)·old).
    /// Window-level consumption is noisy; smoothing keeps the daemon from
    /// chasing single-window slack spikes while still reacting within a
    /// few tens of milliseconds.
    pub ema_alpha: f64,
    /// How underfunded (in pCPUs) the marginal active vCPU must be before
    /// the daemon freezes it even though the ceiling rule nominally keeps
    /// it: shrink when `ext <= active - shrink_margin`. A vCPU running on
    /// a 30% credit sliver drags the whole domain OVER.
    pub shrink_margin: f64,
    /// Growth probing: if `n_opt > active` persists this many periods but
    /// the margin keeps blocking growth, grow anyway. Algorithm 1's slack
    /// split is conservative (competitors that cannot spend their share
    /// still dilute it), so persistent headroom is probed; a wrong probe
    /// is rolled back by the shrink margin within a few periods.
    pub grow_patience: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            period: SimDuration::from_ms(10),
            shrink_patience: 3,
            grow_margin: 0.35,
            ema_alpha: 0.2,
            shrink_margin: 0.65,
            grow_patience: 5,
        }
    }
}

/// Kernel-work tags used by the daemon (must not collide with workload
/// tags, which start at [`TAG_USER_BASE`]).
pub const TAG_READ: u64 = 1;
/// Tag base for freeze operations; the target vCPU index is added.
pub const TAG_FREEZE_BASE: u64 = 1_000;
/// Tag base for unfreeze operations; the target vCPU index is added.
pub const TAG_UNFREEZE_BASE: u64 = 2_000;
/// Tag base for hotplug completions.
pub const TAG_HOTPLUG_BASE: u64 = 3_000;
/// First tag value available to workloads.
pub const TAG_USER_BASE: u64 = 1_000_000;

/// What the daemon is currently doing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DaemonPhase {
    /// Waiting for the next timer.
    Idle,
    /// The channel-read work is queued on vCPU0.
    Reading,
    /// A freeze/unfreeze operation's master-side work is queued.
    Reconfiguring {
        /// The vCPU being frozen or unfrozen.
        target: VcpuId,
        /// `true` = freeze, `false` = unfreeze.
        freeze: bool,
    },
}

/// Per-domain daemon state.
#[derive(Clone, Debug)]
pub struct DaemonState {
    /// Tuning parameters.
    pub config: DaemonConfig,
    /// Current phase.
    pub phase: DaemonPhase,
    /// Consecutive periods the computed target stayed below the active
    /// count.
    pub shrink_streak: u32,
    /// Consecutive periods the target stayed above the active count while
    /// the grow margin blocked growth.
    pub grow_streak: u32,
    /// Smoothed extendability in pCPUs (`None` until the first sample).
    pub ext_ema: Option<f64>,
    /// Channel reads performed.
    pub reads: u64,
    /// Reconfiguration operations completed.
    pub reconfigs: u64,
    /// Crash-restarts survived (fault injection).
    pub crashes: u64,
    /// Extendability samples discarded as invalid (torn channel reads
    /// caught by validation) or orphaned by a crash.
    pub discarded_reads: u64,
    /// Hotplug removals that aborted mid-`stop_machine` (fault injection).
    pub hotplug_aborts: u64,
    /// Reads issued before a crash that are still in flight: their
    /// completions must be discarded, because the restarted daemon never
    /// asked for them (the in-flight `ExtendInfo` snapshot dies with the
    /// process). A counter, not a flag — kernel work completes FIFO on
    /// vCPU0, so each orphaned completion consumes one unit before any
    /// post-restart read can complete.
    pub orphaned_reads: u64,
    /// Set by a crash-restart: the next completed read must reconcile the
    /// guest's freeze mask against the hypervisor's per-vCPU frozen view,
    /// because a freeze/unfreeze hypercall issued by the dead incarnation
    /// may have been lost with it.
    pub needs_resync: bool,
    /// Crash-restart resynchronizations performed.
    pub resyncs: u64,
    /// Freeze-state mismatches repaired by those resyncs.
    pub resync_repairs: u64,
}

impl DaemonState {
    /// Creates an idle daemon.
    pub fn new(config: DaemonConfig) -> Self {
        DaemonState {
            config,
            phase: DaemonPhase::Idle,
            shrink_streak: 0,
            grow_streak: 0,
            ext_ema: None,
            reads: 0,
            reconfigs: 0,
            crashes: 0,
            discarded_reads: 0,
            hotplug_aborts: 0,
            orphaned_reads: 0,
            needs_resync: false,
            resyncs: 0,
            resync_repairs: 0,
        }
    }

    /// Crash-and-restart: the process dies and is respawned by init within
    /// the same period. All soft state — the EMA, both hysteresis streaks,
    /// the phase machine, and any in-flight read snapshot — is lost;
    /// lifetime counters survive because they are *our* bookkeeping, not
    /// the daemon's memory. A reconfiguration whose master-side work was
    /// already queued still completes (the kernel work was already
    /// submitted); only its tracking is forgotten, so the restarted daemon
    /// re-reads and re-converges from scratch.
    pub fn crash_restart(&mut self) {
        if self.phase == DaemonPhase::Reading {
            self.orphaned_reads += 1;
        }
        self.phase = DaemonPhase::Idle;
        self.shrink_streak = 0;
        self.grow_streak = 0;
        self.ext_ema = None;
        self.crashes += 1;
        // The new incarnation cannot trust that the dead one's last
        // freeze/unfreeze hypercall landed: reconcile on the next read.
        self.needs_resync = true;
    }

    /// Feeds one extendability sample (pCPUs) into the smoother and
    /// returns the smoothed value.
    pub fn smooth(&mut self, ext_pcpus: f64) -> f64 {
        let a = self.config.ema_alpha.clamp(0.01, 1.0);
        let ema = match self.ext_ema {
            Some(prev) => a * ext_pcpus + (1.0 - a) * prev,
            None => ext_pcpus,
        };
        self.ext_ema = Some(ema);
        ema
    }

    /// Decides the next reconfiguration step given the Algorithm 1 target
    /// `n_opt` (computed from the smoothed extendability), the smoothed
    /// extendability in pCPUs, and the current active count. Applies
    /// shrink hysteresis and the grow margin. Returns `Some(+1)` to
    /// unfreeze one vCPU, `Some(-1)` to freeze one, or `None` to hold.
    pub fn decide(&mut self, n_opt: usize, ext_pcpus: f64, active: usize) -> Option<i32> {
        use std::cmp::Ordering;
        let badly_underfunded = ext_pcpus <= active as f64 - self.config.shrink_margin;
        match n_opt.cmp(&active) {
            Ordering::Greater => {
                self.shrink_streak = 0;
                if ext_pcpus >= active as f64 + self.config.grow_margin {
                    self.grow_streak = 0;
                    Some(1)
                } else {
                    self.grow_streak += 1;
                    if self.grow_streak >= self.config.grow_patience {
                        self.grow_streak = 0;
                        Some(1) // Probe.
                    } else {
                        None
                    }
                }
            }
            Ordering::Less => {
                self.grow_streak = 0;
                self.shrink_streak += 1;
                if self.shrink_streak >= self.config.shrink_patience {
                    Some(-1)
                } else {
                    None
                }
            }
            Ordering::Equal if badly_underfunded && active > 1 => {
                self.grow_streak = 0;
                self.shrink_streak += 1;
                if self.shrink_streak >= self.config.shrink_patience {
                    Some(-1)
                } else {
                    None
                }
            }
            Ordering::Equal => {
                self.shrink_streak = 0;
                self.grow_streak = 0;
                None
            }
        }
    }
}

fn save_phase(w: &mut sim_core::snap::SnapWriter, p: &DaemonPhase) {
    match p {
        DaemonPhase::Idle => w.u8(0),
        DaemonPhase::Reading => w.u8(1),
        DaemonPhase::Reconfiguring { target, freeze } => {
            w.u8(2);
            w.usize(target.index());
            w.bool(*freeze);
        }
    }
}

fn load_phase(r: &mut sim_core::snap::SnapReader<'_>) -> DaemonPhase {
    match r.u8() {
        0 => DaemonPhase::Idle,
        1 => DaemonPhase::Reading,
        2 => DaemonPhase::Reconfiguring {
            target: VcpuId(r.usize()),
            freeze: r.bool(),
        },
        t => panic!("unknown daemon phase tag {t}"),
    }
}

impl DaemonState {
    /// Serializes the full daemon state machine — phase, hysteresis
    /// streaks, the EMA, and every lifetime counter. The tuning config is
    /// structural (restore targets a twin built from the same spec).
    pub fn save(&self, w: &mut sim_core::snap::SnapWriter) {
        let DaemonState {
            config: _,
            phase,
            shrink_streak,
            grow_streak,
            ext_ema,
            reads,
            reconfigs,
            crashes,
            discarded_reads,
            hotplug_aborts,
            orphaned_reads,
            needs_resync,
            resyncs,
            resync_repairs,
        } = self;
        w.section("daemon");
        save_phase(w, phase);
        w.u32(*shrink_streak);
        w.u32(*grow_streak);
        w.opt(ext_ema.as_ref(), |w, &e| w.f64(e));
        w.u64(*reads);
        w.u64(*reconfigs);
        w.u64(*crashes);
        w.u64(*discarded_reads);
        w.u64(*hotplug_aborts);
        w.u64(*orphaned_reads);
        w.bool(*needs_resync);
        w.u64(*resyncs);
        w.u64(*resync_repairs);
    }

    /// Restores state saved by [`DaemonState::save`].
    pub fn load(&mut self, r: &mut sim_core::snap::SnapReader<'_>) {
        r.section("daemon");
        self.phase = load_phase(r);
        self.shrink_streak = r.u32();
        self.grow_streak = r.u32();
        self.ext_ema = r.opt(|r| r.f64());
        self.reads = r.u64();
        self.reconfigs = r.u64();
        self.crashes = r.u64();
        self.discarded_reads = r.u64();
        self.hotplug_aborts = r.u64();
        self.orphaned_reads = r.u64();
        self.needs_resync = r.bool();
        self.resyncs = r.u64();
        self.resync_repairs = r.u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_is_immediate_when_funded() {
        let mut d = DaemonState::new(DaemonConfig::default());
        assert_eq!(d.decide(4, 3.6, 2), Some(1));
        assert_eq!(d.decide(3, 2.9, 2), Some(1));
    }

    #[test]
    fn grow_margin_blocks_sliver_funding() {
        let mut d = DaemonState::new(DaemonConfig::default());
        // ceil(2.1) = 3 > 2 active, but the third vCPU would run on a
        // 0.1-pCPU sliver: hold at 2.
        assert_eq!(d.decide(3, 2.1, 2), None);
        assert_eq!(d.decide(3, 2.5, 2), Some(1));
    }

    #[test]
    fn persistent_headroom_is_probed() {
        let mut d = DaemonState::new(DaemonConfig {
            grow_patience: 3,
            ..DaemonConfig::default()
        });
        assert_eq!(d.decide(3, 2.2, 2), None);
        assert_eq!(d.decide(3, 2.2, 2), None);
        assert_eq!(d.decide(3, 2.2, 2), Some(1), "third period probes");
        // Streak reset after the probe.
        assert_eq!(d.decide(4, 3.2, 3), None);
    }

    #[test]
    fn badly_underfunded_marginal_vcpu_is_frozen() {
        let mut d = DaemonState::new(DaemonConfig {
            shrink_patience: 1,
            ..DaemonConfig::default()
        });
        // ceil(2.2) = 3 = active, but the third vCPU runs on 0.2 pCPUs.
        assert_eq!(d.decide(3, 2.2, 3), Some(-1));
        // Adequately funded marginal vCPU is kept.
        assert_eq!(d.decide(3, 2.8, 3), None);
        // A UP domain is never shrunk.
        assert_eq!(d.decide(1, 0.1, 1), None);
    }

    #[test]
    fn shrink_needs_patience() {
        let mut d = DaemonState::new(DaemonConfig {
            shrink_patience: 2,
            ..DaemonConfig::default()
        });
        assert_eq!(d.decide(1, 1.0, 4), None, "first low sample: wait");
        assert_eq!(d.decide(1, 1.0, 4), Some(-1), "second low sample: shrink");
    }

    #[test]
    fn equal_resets_streak() {
        let mut d = DaemonState::new(DaemonConfig {
            shrink_patience: 2,
            ..DaemonConfig::default()
        });
        assert_eq!(d.decide(1, 1.0, 4), None);
        assert_eq!(d.decide(4, 4.0, 4), None);
        assert_eq!(d.decide(1, 1.0, 4), None, "streak restarted");
    }

    #[test]
    fn grow_resets_streak() {
        let mut d = DaemonState::new(DaemonConfig {
            shrink_patience: 2,
            ..DaemonConfig::default()
        });
        assert_eq!(d.decide(2, 2.0, 4), None);
        assert_eq!(d.decide(5, 5.0, 4), Some(1));
        assert_eq!(d.decide(2, 2.0, 4), None);
    }

    #[test]
    fn crash_restart_loses_soft_state_keeps_counters() {
        let mut d = DaemonState::new(DaemonConfig {
            shrink_patience: 3,
            ..DaemonConfig::default()
        });
        d.smooth(3.0);
        d.decide(1, 1.0, 4);
        d.reads = 7;
        d.reconfigs = 2;
        d.phase = DaemonPhase::Reading;
        assert!(d.ext_ema.is_some());
        assert_eq!(d.shrink_streak, 1);

        d.crash_restart();
        assert_eq!(d.phase, DaemonPhase::Idle);
        assert_eq!(d.ext_ema, None, "EMA dies with the process");
        assert_eq!(d.shrink_streak, 0);
        assert_eq!(d.grow_streak, 0);
        assert_eq!(d.orphaned_reads, 1, "the in-flight read is orphaned");
        assert_eq!(d.crashes, 1);
        assert!(d.needs_resync, "a restart distrusts the hypervisor view");
        assert_eq!((d.reads, d.reconfigs), (7, 2), "counters survive");

        // A crash while idle orphans nothing further.
        d.crash_restart();
        assert_eq!(d.orphaned_reads, 1);
        assert_eq!(d.crashes, 2);
    }
}
