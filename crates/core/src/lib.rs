//! vScale: automatic and efficient processor scaling for SMP VMs.
//!
//! This crate is the cross-layer core of the reproduction of the EuroSys '16
//! paper. It composes the hypervisor ([`xen_sched`]) and one or more guest
//! kernels ([`guest_kernel`]) into a deterministic discrete-event
//! [`machine::Machine`], and implements the pieces that live *between* the
//! layers:
//!
//! - the **vScale daemon** ([`daemon`]) — the RT-class user-space process
//!   pinned to vCPU0 that polls the VM's CPU extendability through the
//!   vScale channel and freezes/unfreezes vCPUs to match;
//! - effect routing — reschedule IPIs, pv-lock kicks, device interrupts and
//!   idle/block transitions all travel through the hypervisor scheduler, so
//!   every delay the paper describes (Figure 1) emerges from scheduling;
//! - the **hotplug baseline** — the same monitoring loop driving Linux CPU
//!   hotplug instead of vScale's balancer, for head-to-head comparisons;
//! - scenario plumbing ([`config`]) — the four evaluation configurations
//!   (baseline, pv-spinlock, vScale, vScale+pv-spinlock) and the
//!   overcommitted-host setups used by the application experiments.

pub mod config;
pub mod daemon;
pub mod machine;

pub use config::{DomainSpec, ElasticConfig, MachineConfig, ScalingMode, SystemConfig};
pub use daemon::DaemonConfig;
pub use machine::{DomainStats, Machine};
pub use sim_core::ids::{DomId, GlobalVcpu, PcpuId, ThreadId, VcpuId};
