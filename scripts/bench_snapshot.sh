#!/usr/bin/env bash
# Captures a machine-readable perf snapshot: runs the microcost suite and
# stores its JSON lines (one per benchmark, including the event-queue
# events_per_sec throughput pair) so future PRs have a perf trajectory.
#
#   ./scripts/bench_snapshot.sh                 # writes BENCH_baseline.json
#   ./scripts/bench_snapshot.sh out.json        # writes elsewhere
#   VSCALE_BENCH_SCALE=full ./scripts/bench_snapshot.sh   # longer timed phase
#
# Numbers are machine- and load-dependent; compare ratios (e.g. wheel vs
# heap churn) across snapshots, not absolute nanoseconds across machines.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_baseline.json}"
scale="${VSCALE_BENCH_SCALE:-quick}"

echo "== bench snapshot (scale: $scale) -> $out =="
VSCALE_BENCH_SCALE="$scale" \
    cargo bench -q --offline -p vscale-bench --bench microcosts \
    | tee /dev/stderr | grep '^{' > "$out"
echo "== wrote $(wc -l < "$out") benchmark records to $out =="
