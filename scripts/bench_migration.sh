#!/usr/bin/env bash
# Runs the migration/failover sweep (live migration across a dirty-rate
# × link-latency grid, a rolling host upgrade, and a hot-spot
# evacuation) and stores its JSON lines, plus a checksum of the
# deterministic part.
#
#   ./scripts/bench_migration.sh             # writes BENCH_migration.json
#   ./scripts/bench_migration.sh out.json    # writes elsewhere
#
# The sweep's seeds, scale, and thread count are pinned so the output —
# everything except the wall-clock session line — is bit-identical on
# every machine. scripts/verify.sh re-runs the same pinned sweep and
# compares its checksum against scripts/migration.sha256; regenerate
# that file with this script whenever a deliberate behavior change moves
# the migration numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_migration.json}"

echo "== migration sweep (pinned: quick scale, 2 seeds, 4 threads) -> $out =="
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
    cargo bench -q --offline -p vscale-bench --bench migration_sweep \
    | tee /dev/stderr | grep '^{' > "$out"

grep -v wall_ms "$out" | sha256sum | cut -d' ' -f1 > scripts/migration.sha256
echo "== wrote $(wc -l < "$out") records to $out =="
echo "== migration checksum: $(cat scripts/migration.sha256) =="
