#!/usr/bin/env bash
# Runs the resilience-curve sweep (degradation vs injected fault rate)
# and stores its JSON lines, plus a checksum of the deterministic part.
#
#   ./scripts/bench_resilience.sh               # writes BENCH_resilience.json
#   ./scripts/bench_resilience.sh out.json      # writes elsewhere
#
# The sweep's seeds, scale, and thread count are pinned so the output —
# everything except the wall-clock session line — is bit-identical on
# every machine. scripts/verify.sh re-runs the same pinned sweep and
# compares its checksum against scripts/resilience.sha256; regenerate
# that file with this script whenever a deliberate behavior change moves
# the curve.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_resilience.json}"

echo "== resilience sweep (pinned: quick scale, 3 seeds, 4 threads) -> $out =="
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=3 VSCALE_THREADS=4 \
    cargo bench -q --offline -p vscale-bench --bench resilience \
    | tee /dev/stderr | grep '^{' > "$out"

grep -v wall_ms "$out" | sha256sum | cut -d' ' -f1 > scripts/resilience.sha256
echo "== wrote $(wc -l < "$out") records to $out =="
echo "== degradation-curve checksum: $(cat scripts/resilience.sha256) =="
