#!/usr/bin/env bash
# Runs the adversarial-tenant attack grid — {tick_evade, boost_farm,
# ipi_storm, oscillate} × {credit, credit2, dynfrac} × {baseline,
# attacked, defended} plus the IPI-storm SLO ladder — and stores its
# JSON lines, plus a checksum of the deterministic part.
#
#   ./scripts/bench_attacks.sh               # writes BENCH_attacks.json
#   ./scripts/bench_attacks.sh out.json      # writes elsewhere
#
# The grid's seeds, scale, and thread count are pinned so the output —
# everything except the wall-clock session line — is bit-identical on
# every machine. scripts/verify.sh attack_grid re-runs the same pinned
# grid and compares its checksum against scripts/attacks.sha256, then
# gates on the acceptance fields (every credit-backend attack inflates
# victim waiting ≥ 10%, every matching defense recovers completion to
# within 1.25× of the no-attack baseline). Regenerate the checksum with
# this script whenever a deliberate behavior change moves the grid.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_attacks.json}"

echo "== attack grid (pinned: quick scale, 2 seeds, 4 threads) -> $out =="
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
    cargo bench -q --offline -p vscale-bench --bench attack_grid \
    | tee /dev/stderr | grep '^{' > "$out"

grep -v wall_ms "$out" | sha256sum | cut -d' ' -f1 > scripts/attacks.sha256
echo "== wrote $(wc -l < "$out") records to $out =="
echo "== attack-grid checksum: $(cat scripts/attacks.sha256) =="
