#!/usr/bin/env bash
# Runs the elastic interplay study (five fleets through the same flash
# crowd: static/vScale minimal, over-provisioned static, and the two
# autoscaled fleets) and stores its JSON lines, plus a checksum of the
# deterministic part.
#
#   ./scripts/bench_elastic.sh             # writes BENCH_elastic.json
#   ./scripts/bench_elastic.sh out.json    # writes elsewhere
#
# The sweep's seeds, scale, and thread count are pinned so the output —
# everything except the wall-clock session line — is bit-identical on
# every machine. scripts/verify.sh re-runs the same pinned sweep and
# compares its checksum against scripts/elastic.sha256; regenerate that
# file with this script whenever a deliberate behavior change moves the
# elastic curves.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_elastic.json}"

echo "== elastic sweep (pinned: quick scale, 2 seeds, 4 threads) -> $out =="
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
    cargo bench -q --offline -p vscale-bench --bench elastic_sweep \
    | tee /dev/stderr | grep '^{' > "$out"

grep -v wall_ms "$out" | sha256sum | cut -d' ' -f1 > scripts/elastic.sha256
echo "== wrote $(wc -l < "$out") records to $out =="
echo "== elastic checksum: $(cat scripts/elastic.sha256) =="
