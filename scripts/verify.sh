#!/usr/bin/env bash
# Hermetic tier-1 verification, usable as CI. The workspace has zero
# external dependencies, so everything runs with --offline: no registry,
# no network, no vendor directory.
#
#   ./scripts/verify.sh          # build + full test suite + bench smoke
#   VSCALE_BENCH_SCALE=full ./scripts/verify.sh   # paper-length smoke
#   ./scripts/verify.sh differential_smoke   # just the differential gate
#   ./scripts/verify.sh backend_grid         # just the grid checksum gate
#   ./scripts/verify.sh attack_grid          # just the adversarial-grid gate
#   ./scripts/verify.sh elastic              # just the autoscaler interplay gate
#   ./scripts/verify.sh machine_bench        # just the throughput floor gate
set -euo pipefail
cd "$(dirname "$0")/.."

# 256 seeded op streams per backend (invariants) and per backend pair
# (shared conservation laws), offline, fixed seed; divergences arrive
# pre-shrunk to a minimal op sequence. See tests/differential.rs.
differential_smoke() {
    echo "== differential: 256 seeded op streams × 3 backends × 3 pairs =="
    cargo test -q --offline --test differential
    echo "   per-backend invariants and cross-backend conservation OK"
}

# The per-backend figure grid (reduced fig6/fig11/fig14 on every
# scheduler backend) under the same pinning discipline as the resilience
# gate; regenerate scripts/backend_grid.sha256 deliberately with
# scripts/bench_backend_grid.sh.
backend_grid_gate() {
    echo "== backend grid: per-backend fig6/fig11/fig14 must match the committed checksum =="
    local out
    out="$(mktemp)"
    VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
        cargo bench -q --offline -p vscale-bench --bench backend_grid \
        | grep '^{' | grep -v wall_ms > "$out"
    local want got
    want="$(cat scripts/backend_grid.sha256)"
    got="$(sha256sum "$out" | cut -d' ' -f1)"
    if [ "$want" != "$got" ]; then
        echo "backend grid drifted: want $want got $got" >&2
        cat "$out" >&2
        rm -f "$out"
        exit 1
    fi
    for b in credit credit2 dynfrac; do
        grep -q "\"backend\":\"$b\"" "$out"
    done
    rm -f "$out"
    echo "   grid checksum OK ($got), all three backends present"
}

# Whole-machine dispatch cost must stay within 2x of the committed
# snapshot (BENCH_baseline.json). Compared on min_ns — the mean (and
# thus events_per_sec) is wrecked by millisecond outliers from ambient
# load, while the best-of-200 call is stable. The 2x headroom absorbs
# machine noise — the gate exists to catch structural regressions (an
# accidental O(n) scan or per-event allocation doubles the per-call
# floor), not to police single-digit percentages; refresh the snapshot
# deliberately with scripts/bench_snapshot.sh when the hot core
# genuinely changes.
machine_bench_gate() {
    echo "== machine bench: per-call floor must stay within 2x of BENCH_baseline.json =="
    local out
    out="$(mktemp)"
    cargo bench -q --offline -p vscale-bench --bench microcosts | grep '^{' > "$out"
    local bench base fresh
    for bench in machine_dispatch_supervised machine_steps_steady; do
        base="$(grep "\"bench\":\"$bench\"" BENCH_baseline.json \
            | sed -E 's/.*"min_ns":([0-9]+).*/\1/;s/\..*//')"
        fresh="$(grep "\"bench\":\"$bench\"" "$out" \
            | sed -E 's/.*"min_ns":([0-9]+).*/\1/;s/\..*//')"
        if [ -z "$base" ] || [ -z "$fresh" ]; then
            echo "machine bench gate: missing $bench record" >&2
            rm -f "$out"
            exit 1
        fi
        if [ "$fresh" -gt $((base * 2)) ]; then
            echo "$bench regressed: ${fresh}ns/call vs baseline ${base}ns (ceiling $((base * 2))ns)" >&2
            rm -f "$out"
            exit 1
        fi
        echo "   $bench: ${fresh}ns/call min (baseline ${base}ns) OK"
    done
    rm -f "$out"
}

# The adversarial-tenant grid: checksum-pinned like the other bench
# gates, plus the acceptance criteria the grid exists for — on the
# vulnerable (sampled-burn) credit backend every attack class inflates
# victim waiting by ≥ 10%, and every matching defense restores
# completion time to within 1.25× of the no-attack baseline, on every
# backend. The grid must also replay byte-identically across thread
# counts: attack phase-locking rides the timing wheel, never wall time.
# Regenerate scripts/attacks.sha256 deliberately with
# scripts/bench_attacks.sh.
attack_grid_gate() {
    echo "== attack grid: 4 attacks × 3 backends × {baseline,attacked,defended} =="
    local out_t4 out_t1
    out_t4="$(mktemp)"; out_t1="$(mktemp)"
    VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
        cargo bench -q --offline -p vscale-bench --bench attack_grid \
        | grep '^{' | grep -v wall_ms > "$out_t4"
    local want got
    want="$(cat scripts/attacks.sha256)"
    got="$(sha256sum "$out_t4" | cut -d' ' -f1)"
    if [ "$want" != "$got" ]; then
        echo "attack grid drifted: want $want got $got" >&2
        cat "$out_t4" >&2
        rm -f "$out_t4" "$out_t1"
        exit 1
    fi
    if grep -q '"defended_ok":false' "$out_t4"; then
        echo "a defended cell failed to recover within the bound:" >&2
        grep '"defended_ok":false' "$out_t4" >&2
        rm -f "$out_t4" "$out_t1"
        exit 1
    fi
    grep -q '"credit_all_inflated":true' "$out_t4"
    grep -q '"all_defended_ok":true' "$out_t4"
    VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=1 \
        cargo bench -q --offline -p vscale-bench --bench attack_grid \
        | grep '^{' | grep -v wall_ms > "$out_t1"
    diff -u "$out_t4" "$out_t1"
    rm -f "$out_t4" "$out_t1"
    echo "   grid checksum OK ($got); all attacks inflate on credit, all defenses recover,"
    echo "   byte-identical at VSCALE_THREADS=1 and =4"
}

# The elastic interplay study: five fleets (static/vScale minimal,
# over-provisioned static, autoscaled static and vScale) through the
# same flash crowd, pinned like the other bench gates. Beyond the
# checksum, the closing gate line must attest the headline of the
# study: the autoscaled vScale fleet holds the fleet-p99 SLO with zero
# request loss through at least one scale-out AND scale-in, the minimal
# static fleet breaches, no fleet anywhere loses a request across scale
# events, and vScale spends fewer host-seconds than the cheapest static
# fleet that also held. The sweep must replay byte-identically across
# thread counts: sampling rides the cluster's timing wheel and
# actuation lands between lockstep epochs. Regenerate
# scripts/elastic.sha256 deliberately with scripts/bench_elastic.sh.
elastic_gate() {
    echo "== elastic: interplay study must match the committed curves and hold the SLO =="
    local out_t4 out_t1
    out_t4="$(mktemp)"; out_t1="$(mktemp)"
    VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
        cargo bench -q --offline -p vscale-bench --bench elastic_sweep \
        | grep '^{' | grep -v wall_ms > "$out_t4"
    local want got
    want="$(cat scripts/elastic.sha256)"
    got="$(sha256sum "$out_t4" | cut -d' ' -f1)"
    if [ "$want" != "$got" ]; then
        echo "elastic curves drifted: want $want got $got" >&2
        cat "$out_t4" >&2
        rm -f "$out_t4" "$out_t1"
        exit 1
    fi
    local field
    for field in vscale_auto_held vscale_auto_scaled_out vscale_auto_scaled_in \
                 static_min_breached all_zero_loss vscale_fewer_host_seconds; do
        if ! grep '"elastic_gate"' "$out_t4" | grep -q "\"$field\":true"; then
            echo "elastic gate attestation failed: $field" >&2
            grep '"elastic_gate"' "$out_t4" >&2
            rm -f "$out_t4" "$out_t1"
            exit 1
        fi
    done
    if grep -q '"drops":[1-9]' "$out_t4"; then
        echo "an elastic run dropped requests across a scale event:" >&2
        grep '"drops":[1-9]' "$out_t4" >&2
        rm -f "$out_t4" "$out_t1"
        exit 1
    fi
    VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=1 \
        cargo bench -q --offline -p vscale-bench --bench elastic_sweep \
        | grep '^{' | grep -v wall_ms > "$out_t1"
    diff -u "$out_t4" "$out_t1"
    rm -f "$out_t4" "$out_t1"
    echo "   elastic checksum OK ($got); vScale+autoscaler holds the SLO with zero loss and"
    echo "   fewer host-seconds than any SLO-holding static fleet; byte-identical at"
    echo "   VSCALE_THREADS=1 and =4"
}

case "${1:-all}" in
    differential_smoke) differential_smoke; exit 0 ;;
    backend_grid) backend_grid_gate; exit 0 ;;
    attack_grid) attack_grid_gate; exit 0 ;;
    elastic) elastic_gate; exit 0 ;;
    machine_bench) machine_bench_gate; exit 0 ;;
    all) ;;
    *) echo "unknown verify target: $1" >&2; exit 2 ;;
esac

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== tier-1: tests (offline) =="
cargo test -q --offline
cargo test -q --offline --workspace

echo "== tier-1: clippy (offline, -D warnings) =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== tier-1: rustfmt (--check) =="
cargo fmt --check

echo "== bench smoke: table1_channel + fig6_npb (quick scale) =="
VSCALE_BENCH_SCALE="${VSCALE_BENCH_SCALE:-quick}" VSCALE_BENCH_SEEDS="${VSCALE_BENCH_SEEDS:-1}" \
    cargo bench -q --offline -p vscale-bench --bench table1_channel
VSCALE_BENCH_SCALE="${VSCALE_BENCH_SCALE:-quick}" VSCALE_BENCH_SEEDS="${VSCALE_BENCH_SEEDS:-1}" \
    cargo bench -q --offline -p vscale-bench --bench fig6_npb

echo "== parallel smoke: seed sweep must be byte-stable across thread counts =="
# Same 4-seed sweep at 1 and 4 threads; everything except the wall-clock
# session line (wall_ms, which also carries the thread count) must match
# byte for byte.
sweep_t1="$(mktemp)"; sweep_t4="$(mktemp)"
trap 'rm -f "$sweep_t1" "$sweep_t4"' EXIT
VSCALE_THREADS=1 VSCALE_BENCH_SEEDS=4 \
    cargo bench -q --offline -p vscale-bench --bench seed_sweep_smoke \
    | grep -v wall_ms > "$sweep_t1"
VSCALE_THREADS=4 VSCALE_BENCH_SEEDS=4 \
    cargo bench -q --offline -p vscale-bench --bench seed_sweep_smoke \
    | grep -v wall_ms > "$sweep_t4"
diff -u "$sweep_t1" "$sweep_t4"
echo "   byte-identical at VSCALE_THREADS=1 and =4"

echo "== chaos: fault-injection suite + fixed-plan replay smoke =="
# Every fault class must terminate cleanly or with a typed error — never
# hang or panic (tests/chaos.rs, watchdog-enforced).
cargo test -q --offline --test chaos
# A fixed fault plan swept over seeds must be byte-stable across thread
# counts too: fault draws ride the plan's private RNG, not wall clock.
chaos_t1="$(mktemp)"; chaos_t4="$(mktemp)"
trap 'rm -f "$sweep_t1" "$sweep_t4" "$chaos_t1" "$chaos_t4"' EXIT
VSCALE_THREADS=1 VSCALE_BENCH_SEEDS=4 \
    cargo bench -q --offline -p vscale-bench --bench chaos_smoke \
    | grep -v wall_ms > "$chaos_t1"
VSCALE_THREADS=4 VSCALE_BENCH_SEEDS=4 \
    cargo bench -q --offline -p vscale-bench --bench chaos_smoke \
    | grep -v wall_ms > "$chaos_t4"
diff -u "$chaos_t1" "$chaos_t4"
echo "   fault-plan replay byte-identical at VSCALE_THREADS=1 and =4"

echo "== resilience: fixed-plan sweep must match the committed degradation curve =="
# The pinned sweep (quick scale, 3 seeds, 4 threads) is fully
# deterministic once wall_ms is stripped; its checksum is committed in
# scripts/resilience.sha256. A mismatch means a behavior change moved
# the degradation curve — regenerate deliberately with
# scripts/bench_resilience.sh and review the new curve in the diff.
resilience_out="$(mktemp)"
trap 'rm -f "$sweep_t1" "$sweep_t4" "$chaos_t1" "$chaos_t4" "$resilience_out"' EXIT
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=3 VSCALE_THREADS=4 \
    cargo bench -q --offline -p vscale-bench --bench resilience \
    | grep '^{' | grep -v wall_ms > "$resilience_out"
want="$(cat scripts/resilience.sha256)"
got="$(sha256sum "$resilience_out" | cut -d' ' -f1)"
if [ "$want" != "$got" ]; then
    echo "resilience curve drifted: want $want got $got" >&2
    cat "$resilience_out" >&2
    exit 1
fi
grep -q '"recovery_active":true' "$resilience_out"
grep -q '"monotone_within_50000ppm":true' "$resilience_out"
echo "   curve checksum OK ($got), monotone, recovery active"

echo "== cluster: fleet sweep must match the committed curves and separate the modes =="
# Same pinning discipline as the resilience gate: the sweep (quick
# scale, 2 seeds, 4 threads) is deterministic once wall_ms is stripped,
# and its closing gate line must show vScale sustaining strictly more
# offered load than static SMP at the fleet p99 SLO. Regenerate the
# checksum deliberately with scripts/bench_cluster.sh.
cluster_out="$(mktemp)"
trap 'rm -f "$sweep_t1" "$sweep_t4" "$chaos_t1" "$chaos_t4" "$resilience_out" "$cluster_out"' EXIT
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
    cargo bench -q --offline -p vscale-bench --bench cluster_sweep \
    | grep '^{' | grep -v wall_ms > "$cluster_out"
want="$(cat scripts/cluster.sha256)"
got="$(sha256sum "$cluster_out" | cut -d' ' -f1)"
if [ "$want" != "$got" ]; then
    echo "fleet curves drifted: want $want got $got" >&2
    cat "$cluster_out" >&2
    exit 1
fi
grep -q '"vscale_gt_static":true' "$cluster_out"
echo "   fleet checksum OK ($got), vScale sustains more load than static at the p99 SLO"

echo "== migration: failover sweep must match the committed numbers and lose nothing =="
# Live migration across a dirty-rate × link-latency grid plus two
# failover scenarios (rolling host upgrade, hot-spot evacuation), under
# the same pinning discipline as the other bench gates. Beyond the
# checksum, the closing gate line must attest zero request loss across
# every scenario and that both cutover and capped-retry abort paths
# actually ran; the whole sweep must also replay byte-identically across
# thread counts, because crashes, restores, and blackout cutovers all
# land at epoch boundaries of the threaded stepper. Regenerate
# scripts/migration.sha256 deliberately with scripts/bench_migration.sh.
mig_t4="$(mktemp)"; mig_t1="$(mktemp)"
trap 'rm -f "$sweep_t1" "$sweep_t4" "$chaos_t1" "$chaos_t4" "$resilience_out" "$cluster_out" "$mig_t4" "$mig_t1"' EXIT
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
    cargo bench -q --offline -p vscale-bench --bench migration_sweep \
    | grep '^{' | grep -v wall_ms > "$mig_t4"
want="$(cat scripts/migration.sha256)"
got="$(sha256sum "$mig_t4" | cut -d' ' -f1)"
if [ "$want" != "$got" ]; then
    echo "migration sweep drifted: want $want got $got" >&2
    cat "$mig_t4" >&2
    exit 1
fi
grep '"migration_gate"' "$mig_t4" | grep -q '"zero_loss":true'
grep '"migration_gate"' "$mig_t4" | grep -q '"abort_and_cutover_seen":true'
if grep -v '"migration_gate"' "$mig_t4" | grep -q '"zero_loss":false'; then
    echo "a migration scenario lost or double-served requests:" >&2
    grep '"zero_loss":false' "$mig_t4" >&2
    exit 1
fi
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=1 \
    cargo bench -q --offline -p vscale-bench --bench migration_sweep \
    | grep '^{' | grep -v wall_ms > "$mig_t1"
diff -u "$mig_t4" "$mig_t1"
echo "   migration checksum OK ($got); zero loss everywhere, abort and cutover both exercised,"
echo "   byte-identical at VSCALE_THREADS=1 and =4"

elastic_gate

differential_smoke

backend_grid_gate

attack_grid_gate

machine_bench_gate

echo "== verify: OK =="
