#!/usr/bin/env bash
# Hermetic tier-1 verification, usable as CI. The workspace has zero
# external dependencies, so everything runs with --offline: no registry,
# no network, no vendor directory.
#
#   ./scripts/verify.sh          # build + full test suite + bench smoke
#   VSCALE_BENCH_SCALE=full ./scripts/verify.sh   # paper-length smoke
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== tier-1: tests (offline) =="
cargo test -q --offline
cargo test -q --offline --workspace

echo "== bench smoke: table1_channel + fig6_npb (quick scale) =="
VSCALE_BENCH_SCALE="${VSCALE_BENCH_SCALE:-quick}" VSCALE_BENCH_SEEDS="${VSCALE_BENCH_SEEDS:-1}" \
    cargo bench -q --offline -p vscale-bench --bench table1_channel
VSCALE_BENCH_SCALE="${VSCALE_BENCH_SCALE:-quick}" VSCALE_BENCH_SEEDS="${VSCALE_BENCH_SEEDS:-1}" \
    cargo bench -q --offline -p vscale-bench --bench fig6_npb

echo "== verify: OK =="
