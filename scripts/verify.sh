#!/usr/bin/env bash
# Hermetic tier-1 verification, usable as CI. The workspace has zero
# external dependencies, so everything runs with --offline: no registry,
# no network, no vendor directory.
#
#   ./scripts/verify.sh          # build + full test suite + bench smoke
#   VSCALE_BENCH_SCALE=full ./scripts/verify.sh   # paper-length smoke
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== tier-1: tests (offline) =="
cargo test -q --offline
cargo test -q --offline --workspace

echo "== tier-1: clippy (offline, -D warnings) =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== bench smoke: table1_channel + fig6_npb (quick scale) =="
VSCALE_BENCH_SCALE="${VSCALE_BENCH_SCALE:-quick}" VSCALE_BENCH_SEEDS="${VSCALE_BENCH_SEEDS:-1}" \
    cargo bench -q --offline -p vscale-bench --bench table1_channel
VSCALE_BENCH_SCALE="${VSCALE_BENCH_SCALE:-quick}" VSCALE_BENCH_SEEDS="${VSCALE_BENCH_SEEDS:-1}" \
    cargo bench -q --offline -p vscale-bench --bench fig6_npb

echo "== parallel smoke: seed sweep must be byte-stable across thread counts =="
# Same 4-seed sweep at 1 and 4 threads; everything except the wall-clock
# session line (wall_ms, which also carries the thread count) must match
# byte for byte.
sweep_t1="$(mktemp)"; sweep_t4="$(mktemp)"
trap 'rm -f "$sweep_t1" "$sweep_t4"' EXIT
VSCALE_THREADS=1 VSCALE_BENCH_SEEDS=4 \
    cargo bench -q --offline -p vscale-bench --bench seed_sweep_smoke \
    | grep -v wall_ms > "$sweep_t1"
VSCALE_THREADS=4 VSCALE_BENCH_SEEDS=4 \
    cargo bench -q --offline -p vscale-bench --bench seed_sweep_smoke \
    | grep -v wall_ms > "$sweep_t4"
diff -u "$sweep_t1" "$sweep_t4"
echo "   byte-identical at VSCALE_THREADS=1 and =4"

echo "== chaos: fault-injection suite + fixed-plan replay smoke =="
# Every fault class must terminate cleanly or with a typed error — never
# hang or panic (tests/chaos.rs, watchdog-enforced).
cargo test -q --offline --test chaos
# A fixed fault plan swept over seeds must be byte-stable across thread
# counts too: fault draws ride the plan's private RNG, not wall clock.
chaos_t1="$(mktemp)"; chaos_t4="$(mktemp)"
trap 'rm -f "$sweep_t1" "$sweep_t4" "$chaos_t1" "$chaos_t4"' EXIT
VSCALE_THREADS=1 VSCALE_BENCH_SEEDS=4 \
    cargo bench -q --offline -p vscale-bench --bench chaos_smoke \
    | grep -v wall_ms > "$chaos_t1"
VSCALE_THREADS=4 VSCALE_BENCH_SEEDS=4 \
    cargo bench -q --offline -p vscale-bench --bench chaos_smoke \
    | grep -v wall_ms > "$chaos_t4"
diff -u "$chaos_t1" "$chaos_t4"
echo "   fault-plan replay byte-identical at VSCALE_THREADS=1 and =4"

echo "== verify: OK =="
