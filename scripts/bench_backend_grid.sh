#!/usr/bin/env bash
# Runs the per-backend figure grid (reduced fig6/fig11/fig14 on every
# scheduler backend) and stores its JSON lines, plus a checksum of the
# deterministic part.
#
#   ./scripts/bench_backend_grid.sh           # writes BENCH_backend_grid.json
#   ./scripts/bench_backend_grid.sh out.json  # writes elsewhere
#
# Seeds, scale, and thread count are pinned so the output — everything
# except the wall-clock session line — is bit-identical on every machine.
# scripts/verify.sh re-runs the same pinned grid and compares its checksum
# against scripts/backend_grid.sha256; regenerate that file with this
# script whenever a deliberate behavior change moves a grid cell.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_backend_grid.json}"

echo "== backend grid (pinned: quick scale, 2 seeds, 4 threads) -> $out =="
VSCALE_BENCH_SCALE=quick VSCALE_BENCH_SEEDS=2 VSCALE_THREADS=4 \
    cargo bench -q --offline -p vscale-bench --bench backend_grid \
    | tee /dev/stderr | grep '^{' > "$out"

grep -v wall_ms "$out" | sha256sum | cut -d' ' -f1 > scripts/backend_grid.sha256
echo "== wrote $(wc -l < "$out") records to $out =="
echo "== backend-grid checksum: $(cat scripts/backend_grid.sha256) =="
