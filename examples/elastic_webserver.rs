//! An Apache-style web server in a vScale VM next to busy desktop
//! neighbours: shows request latency and the VM resizing itself to keep
//! its interrupt vCPU fully funded.
//!
//! Run with: `cargo run --release --example elastic_webserver [rate]`

use vscale_repro::apps::apache::{self, ApacheConfig};
use vscale_repro::apps::desktop::{self, SlideshowConfig};
use vscale_repro::core::config::{MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::sim::time::{SimDuration, SimTime};
use vscale_repro::stats::Table;

fn run(cfg: SystemConfig, rate: f64) -> apache::HttperfSummary {
    let vm_vcpus = 4;
    let mut m = Machine::new(MachineConfig {
        n_pcpus: vm_vcpus,
        seed: 0xe1a5,
        ..MachineConfig::default()
    });
    let mut spec = cfg.domain_spec(vm_vcpus).with_weight(128 * vm_vcpus as u32);
    spec.guest.costs.softirq_net = SimDuration::from_us(25);
    let vm = m.add_domain(spec);
    // Busy neighbours: full-tilt slideshows.
    let slideshow = SlideshowConfig {
        think_mean: SimDuration::from_ms(280),
        burst_mean: SimDuration::from_ms(850),
        ..SlideshowConfig::default()
    };
    desktop::add_desktops(&mut m, 2, slideshow);
    let srv = apache::install(&mut m, vm, ApacheConfig::default());
    let start = SimTime::from_ms(200);
    let window = SimDuration::from_secs(3);
    let sent = apache::run_client(&mut m, vm, &srv, rate, start, window);
    m.run_until(start + window + SimDuration::from_ms(300));
    let summary = apache::summarize(&m, vm, &srv, start, window);
    println!(
        "  {}: sent {sent}, replied {}, active vCPUs ended at {}",
        cfg.label(),
        summary.replies,
        m.guest(vm).active_vcpus()
    );
    summary
}

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9_000.0);
    println!("httperf at {rate:.0} requests/s for a 16 KB file over 1 GbE:\n");
    let mut t = Table::new(
        format!("Apache at {rate:.0} req/s, contended host"),
        &["configuration", "reply rate (/s)", "conn (ms)", "resp (ms)"],
    );
    for cfg in SystemConfig::ALL {
        let s = run(cfg, rate);
        t.row(&[
            cfg.label().into(),
            format!("{:.0}", s.reply_rate),
            format!("{:.2}", s.connection_time_ms),
            format!("{:.2}", s.response_time_ms),
        ]);
    }
    t.print();
    println!(
        "\nconnection time reflects how quickly the interrupt vCPU gets a\n\
         pCPU; the baseline's breaks come from preempted vCPUs and\n\
         lock-holder preemption in the network path (paper Figure 14)."
    );
}
