//! Quickstart: build a host, add a vScale-managed VM next to a noisy
//! neighbour, run a small parallel workload, and watch the VM resize
//! itself.
//!
//! Run with: `cargo run --release --example quickstart`

use vscale_repro::apps::desktop::{self, SlideshowConfig};
use vscale_repro::core::config::{DomainSpec, MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::guest::thread::{OneShot, ThreadKind};
use vscale_repro::sim::time::{SimDuration, SimTime};

fn main() {
    // A host with 4 pCPUs in the guest pool.
    let mut machine = Machine::new(MachineConfig {
        n_pcpus: 4,
        ..MachineConfig::default()
    });

    // The test VM: 4 vCPUs, managed by vScale (daemon + channel +
    // balancer). `SystemConfig` also offers Baseline / Pvlock /
    // VScalePvlock variants.
    let vm = machine.add_domain(SystemConfig::VScale.domain_spec(4).with_weight(512));

    // A noisy neighbour: a 2-vCPU virtual desktop running a photo
    // slideshow (CPU spikes separated by think time).
    let _desktop = desktop::add_desktop_vm(&mut machine, SlideshowConfig::default());
    let _desktop2 = desktop::add_desktop_vm(&mut machine, SlideshowConfig::default());

    // Give the VM four CPU-bound threads, one second of work each.
    for _ in 0..4 {
        let tid = machine.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(OneShot::new(SimDuration::from_secs(1))),
        );
        machine.start_thread(vm, tid);
    }

    // Run to completion (or a 30-second deadline).
    let done = machine
        .run_until_exited(vm, SimTime::from_secs(30))
        .expect("workload finishes");

    let stats = machine.domain_stats(vm);
    println!("workload finished at {done}");
    println!(
        "VM CPU time {:.2}s, waiting time {:.2}s, daemon reads {}, reconfigurations {}",
        stats.run_total.as_secs_f64(),
        stats.wait_total.as_secs_f64(),
        stats.daemon_reads,
        stats.reconfigs
    );
    println!("\nactive-vCPU trace (time, count):");
    for (t, n) in machine.active_trace(vm) {
        println!("  {:>8.3}s  {}", t.as_secs_f64(), n);
    }
    println!(
        "\nThe daemon polled the VM's CPU extendability every 10 ms through\n\
         the vScale channel and froze/unfroze vCPUs to match — each\n\
         reconfiguration costing ~2 µs instead of CPU-hotplug's 10-100 ms."
    );

    // Compare against a fixed-size run of the same workload.
    let mut fixed = Machine::new(MachineConfig {
        n_pcpus: 4,
        ..MachineConfig::default()
    });
    let fvm = fixed.add_domain(DomainSpec::fixed(4).with_weight(512));
    desktop::add_desktop_vm(&mut fixed, SlideshowConfig::default());
    desktop::add_desktop_vm(&mut fixed, SlideshowConfig::default());
    for _ in 0..4 {
        let tid = fixed.guest_mut(fvm).spawn(
            ThreadKind::User,
            Box::new(OneShot::new(SimDuration::from_secs(1))),
        );
        fixed.start_thread(fvm, tid);
    }
    let fixed_done = fixed
        .run_until_exited(fvm, SimTime::from_secs(30))
        .expect("workload finishes");
    let fstats = fixed.domain_stats(fvm);
    println!(
        "\nfixed 4-vCPU baseline: finished at {fixed_done}, waiting time {:.2}s\n\
         (vScale waiting time was {:.2}s)",
        fstats.wait_total.as_secs_f64(),
        stats.wait_total.as_secs_f64()
    );
}
