//! Runs one NPB application (default `lu`) in the paper's §5.2.1 setting
//! under all four system configurations and prints the Figure 6-style
//! normalized comparison.
//!
//! Run with: `cargo run --release --example npb_showdown [app] [spin]`
//! where `app` is one of bt cg dc ep ft is lu mg sp ua and `spin` is one
//! of `active`, `default`, `passive`.

use vscale_repro::apps::desktop::{self, SlideshowConfig};
use vscale_repro::apps::npb;
use vscale_repro::apps::spin::SpinPolicy;
use vscale_repro::core::config::{MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::sim::time::SimTime;
use vscale_repro::stats::Table;

fn run_one(cfg: SystemConfig, app: npb::NpbApp, policy: SpinPolicy, seed: u64) -> f64 {
    let vm_vcpus = 4;
    let mut m = Machine::new(MachineConfig {
        n_pcpus: vm_vcpus,
        seed,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(cfg.domain_spec(vm_vcpus).with_weight(128 * vm_vcpus as u32));
    let n_desktops = desktop::desktops_for_overcommit(vm_vcpus, vm_vcpus);
    desktop::add_desktops(&mut m, n_desktops, SlideshowConfig::default());
    // Shorten the run: a quarter of the calibrated iterations.
    let app = npb::NpbApp {
        iterations: (app.iterations / 4).max(8),
        ..app
    };
    npb::install(&mut m, vm, app, vm_vcpus, policy);
    let start = m.now();
    let end = m
        .run_until_exited(vm, SimTime::from_secs(120))
        .expect("application finishes");
    end.since(start).as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("lu");
    let policy = match args.get(2).map(String::as_str) {
        Some("default") => SpinPolicy::Default,
        Some("passive") => SpinPolicy::Passive,
        _ => SpinPolicy::Active,
    };
    let app = npb::app(app_name).unwrap_or_else(|| {
        eprintln!("unknown app {app_name}; expected one of bt cg dc ep ft is lu mg sp ua");
        std::process::exit(1);
    });
    println!(
        "running NPB {} with {} in a 4-vCPU VM, 2:1 overcommit (3 seeds)...",
        app.name,
        policy.label()
    );
    let seeds = [3u64, 7, 11];
    let avg = |cfg: SystemConfig| -> f64 {
        seeds
            .iter()
            .map(|&s| run_one(cfg, app, policy, s))
            .sum::<f64>()
            / seeds.len() as f64
    };
    let base = avg(SystemConfig::Baseline);
    let mut t = Table::new(
        format!("NPB {} ({})", app.name, policy.label()),
        &["configuration", "exec (s)", "normalized"],
    );
    for cfg in SystemConfig::ALL {
        let secs = if cfg == SystemConfig::Baseline {
            base
        } else {
            avg(cfg)
        };
        t.row(&[
            cfg.label().into(),
            format!("{secs:.2}"),
            format!("{:.2}", secs / base),
        ]);
    }
    t.print();
}
