//! Watch Algorithm 1 + Algorithm 2 work in real time: prints an ASCII
//! strip chart of a VM's active vCPU count while its neighbours' load
//! fluctuates (the paper's Figure 8).
//!
//! Run with: `cargo run --release --example scaling_trace`

use vscale_repro::apps::desktop::{self, SlideshowConfig};
use vscale_repro::apps::npb;
use vscale_repro::apps::spin::SpinPolicy;
use vscale_repro::core::config::{MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::sim::time::SimTime;

fn main() {
    let vm_vcpus = 4;
    let mut m = Machine::new(MachineConfig {
        n_pcpus: vm_vcpus,
        seed: 0x7ace,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(
        SystemConfig::VScale
            .domain_spec(vm_vcpus)
            .with_weight(128 * vm_vcpus as u32),
    );
    desktop::add_desktops(
        &mut m,
        desktop::desktops_for_overcommit(vm_vcpus, vm_vcpus),
        SlideshowConfig::default(),
    );
    let app = npb::NpbApp {
        iterations: 2_000,
        ..npb::app("bt").expect("bt exists")
    };
    npb::install(&mut m, vm, app, vm_vcpus, SpinPolicy::Active);
    let end = m
        .run_until_exited(vm, SimTime::from_secs(60))
        .expect("bt finishes");

    println!("bt finished at {end}; active-vCPU strip chart (50 ms buckets):\n");
    // Sample the trace into fixed buckets and draw one char per bucket.
    let trace = m.active_trace(vm);
    let total = end.as_secs_f64();
    let buckets = 120usize;
    let dt = total / buckets as f64;
    let mut row = String::new();
    let mut idx = 0;
    for b in 0..buckets {
        let t = b as f64 * dt;
        while idx + 1 < trace.len() && trace[idx + 1].0.as_secs_f64() <= t {
            idx += 1;
        }
        row.push(char::from_digit(trace[idx].1 as u32, 10).unwrap_or('?'));
    }
    for level in (1..=vm_vcpus).rev() {
        let line: String = row
            .chars()
            .map(|c| {
                let v = c.to_digit(10).unwrap_or(0) as usize;
                if v >= level {
                    '#'
                } else {
                    ' '
                }
            })
            .collect();
        println!("{level} |{line}|");
    }
    println!("  +{}+", "-".repeat(buckets));
    println!(
        "   0s{:>width$}",
        format!("{total:.1}s"),
        width = buckets - 2
    );
    let st = m.domain_stats(vm);
    println!(
        "\ndaemon reads: {}, reconfigurations: {}, total waiting {:.2}s",
        st.daemon_reads,
        st.reconfigs,
        st.wait_total.as_secs_f64()
    );
}
