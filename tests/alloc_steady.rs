//! Steady-state dispatch allocates nothing.
//!
//! The hot core's memory story (DESIGN.md §12) is that after startup
//! transients every per-event structure is recycled: the wheel's slab and
//! slot vectors, the run/drain buffers, the `WidePool` side table, the
//! machine's effect/op scratch buffers, the kernel's wake scratch, and the
//! sync objects' waiter queues all keep their capacity across rounds. If
//! that holds, advancing a warmed machine through more simulated time
//! performs **zero** heap allocations — and a counting global allocator
//! can assert it exactly, which is a much sharper regression guard than a
//! throughput number: any future `Vec::new()`/`collect()` sneaking into
//! the dispatch, wake, or barrier paths fails this test deterministically
//! rather than shifting a noisy benchmark.
//!
//! This file must stay a **single-test binary**: the counter is global,
//! so a concurrently running second test would pollute the measured
//! window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vscale_repro::core::config::{DomainSpec, MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::guest::thread::{Looping, ProgramCtx, ThreadAction, ThreadKind};
use vscale_repro::sim::time::{SimDuration, SimTime};

/// Counts every allocator entry point that can hand out new memory.
/// Deallocations are free (they cannot grow the heap) and not counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
thread_local! { static IN_HOOK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) }; }

fn note() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    if ARMED.load(Ordering::Relaxed) {
        IN_HOOK.with(|f| {
            if !f.get() {
                f.set(true);
                eprintln!("ALLOC at:\n{}", std::backtrace::Backtrace::force_capture());
                f.set(false);
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// The steady mixed workload of the `machine_steps_steady` bench: compute
/// bursts, short sleeps (timer wheel traffic), and yields (dispatch
/// boundaries).
fn steady_program() -> Box<Looping<impl FnMut(ProgramCtx) -> ThreadAction + Send>> {
    let mut k = 0u64;
    Box::new(Looping::new("steady", move |_| {
        k += 1;
        match k % 5 {
            0 => ThreadAction::Sleep(SimDuration::from_us(150)),
            3 => ThreadAction::Yield,
            _ => ThreadAction::Compute(SimDuration::from_us(350)),
        }
    }))
}

#[test]
fn steady_state_dispatch_is_allocation_free() {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 4,
        seed: 101,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(4));
    let bg = m.add_domain(DomainSpec::fixed(2));
    for _ in 0..6 {
        let t = m.guest_mut(vm).spawn(ThreadKind::User, steady_program());
        m.start_thread(vm, t);
    }
    for _ in 0..3 {
        let t = m.guest_mut(bg).spawn(ThreadKind::User, steady_program());
        m.start_thread(bg, t);
    }
    // Futex traffic: a PASSIVE (zero spin budget) barrier pair, so every
    // round takes the block + `drain_blocked` wake path, and a
    // mutex/condvar pair driving `drain_waiters` requeues.
    let bar = m.guest_mut(vm).sync.new_barrier(2, Some(SimDuration::ZERO));
    for _ in 0..2 {
        let mut k = 0u64;
        let t = m.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(Looping::new("barrier", move |_| {
                k += 1;
                if k.is_multiple_of(2) {
                    ThreadAction::BarrierWait(bar)
                } else {
                    ThreadAction::Compute(SimDuration::from_us(200))
                }
            })),
        );
        m.start_thread(vm, t);
    }
    let mx = m.guest_mut(vm).sync.new_mutex();
    let cv = m.guest_mut(vm).sync.new_condvar();
    {
        let mut k = 0u64;
        let t = m.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(Looping::new("cond-waiter", move |_| {
                k += 1;
                match k % 3 {
                    1 => ThreadAction::MutexLock(mx),
                    2 => ThreadAction::CondWait(cv, mx),
                    _ => ThreadAction::MutexUnlock(mx),
                }
            })),
        );
        m.start_thread(vm, t);
        let mut k = 0u64;
        let t = m.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(Looping::new("cond-signaler", move |_| {
                k += 1;
                match k % 4 {
                    1 => ThreadAction::Compute(SimDuration::from_us(400)),
                    2 => ThreadAction::MutexLock(mx),
                    3 => ThreadAction::CondSignal(cv),
                    _ => ThreadAction::MutexUnlock(mx),
                }
            })),
        );
        m.start_thread(vm, t);
    }

    // Warm until every recycled buffer has reached its steady capacity:
    // scratch vecs, wheel slots, heaps, slabs, and the guests' wake/run
    // queues all grow only during this phase. The rarest growers are
    // tied to the scaling daemon's freeze/unfreeze churn (kwork rings,
    // the wide-payload free list), so the warmup must span many daemon
    // periods, not just many dispatches.
    m.run_until(SimTime::from_ms(2000));
    let warm_delivered = m.events_delivered();

    let before = ALLOCS.load(Ordering::Relaxed);
    if std::env::var("ALLOC_TRACE").is_ok() {
        ARMED.store(true, Ordering::Relaxed);
    }
    m.run_until(SimTime::from_ms(4000));
    ARMED.store(false, Ordering::Relaxed);
    let grew = ALLOCS.load(Ordering::Relaxed) - before;
    let delivered = m.events_delivered() - warm_delivered;

    assert!(
        delivered > 10_000,
        "window too quiet to be meaningful: {delivered} events"
    );
    assert_eq!(
        grew, 0,
        "steady-state dispatch allocated {grew} times over {delivered} events; \
         a fresh Vec/Box/collect() has crept into the hot path"
    );
}
