//! Cross-layer integration tests: the channel, Algorithm 1 outputs seen
//! through the machine, interrupt redirection, and I/O behaviour under
//! freezing.

use vscale_repro::apps::apache::{self, ApacheConfig};
use vscale_repro::core::config::{DomainSpec, MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::guest::thread::{OneShot, Script, ThreadAction, ThreadKind};
use vscale_repro::sim::time::{SimDuration, SimTime};
use vscale_repro::VcpuId;

#[test]
fn extendability_visible_through_machine() {
    // A busy VM next to an idle one: Algorithm 1 must hand the busy one
    // the whole machine within a few ticker periods.
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 4,
        seed: 2,
        ..MachineConfig::default()
    });
    let busy = m.add_domain(DomainSpec::fixed(4));
    let idle = m.add_domain(DomainSpec::fixed(2));
    for _ in 0..4 {
        let t = m.guest_mut(busy).spawn(
            ThreadKind::User,
            Box::new(OneShot::new(SimDuration::from_secs(1))),
        );
        m.start_thread(busy, t);
    }
    let _ = idle;
    m.run_until(SimTime::from_ms(100));
    let info = m.hv().extendability(vscale_repro::DomId(0));
    assert!(
        info.ext_pcpus() > 3.5,
        "sole busy VM should extend to ~4 pCPUs, got {:.2}",
        info.ext_pcpus()
    );
    assert_eq!(info.n_opt, 4);
    let idle_info = m.hv().extendability(vscale_repro::DomId(1));
    assert!(
        idle_info.ext_pcpus() >= 1.2,
        "idle VM keeps its fair share for ramp-up, got {:.2}",
        idle_info.ext_pcpus()
    );
}

#[test]
fn apache_serves_through_frozen_irq_vcpu() {
    // Bind the request port to vCPU1, then freeze vCPU1: the interrupt
    // must be redirected on occurrence and service must continue.
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed: 3,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(DomainSpec::fixed(2));
    let cfg = ApacheConfig {
        workers: 4,
        ..ApacheConfig::default()
    };
    let q = m.guest_mut(vm).new_io_queue();
    m.guest_mut(vm).set_io_queue_capacity(q, 64);
    let port = m.bind_io_port(vm, q, VcpuId(1));
    for _ in 0..cfg.workers {
        let t = m.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(Script::new(vec![
                ThreadAction::IoWait(q),
                ThreadAction::Compute(SimDuration::from_us(50)),
                ThreadAction::NicSend { bytes: 16_384 },
            ])),
        );
        m.start_thread(vm, t);
    }
    // Freeze vCPU1, then inject requests.
    let now = m.now();
    let mut fx = Vec::new();
    m.guest_mut(vm).freeze_vcpu(VcpuId(1), now, &mut fx);
    m.apply_guest_effects(vm, fx);
    m.run_until(SimTime::from_ms(10));
    for i in 0..4u64 {
        m.inject_io(vm, port, SimTime::from_ms(20 + i), 1);
    }
    m.run_until(SimTime::from_ms(200));
    let (_, deliveries, completions) = m.io_logs(vm);
    assert_eq!(deliveries.len(), 4, "all requests must be delivered");
    assert_eq!(completions.len(), 4, "all replies must go out");
    assert_eq!(
        m.guest(vm).io_irqs(VcpuId(1)),
        0,
        "frozen vCPU must not handle interrupts"
    );
    assert!(m.guest(vm).io_irqs(VcpuId(0)) >= 1);
}

#[test]
fn listen_backlog_drops_when_overwhelmed() {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 1,
        seed: 4,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(DomainSpec::fixed(1));
    let q = m.guest_mut(vm).new_io_queue();
    m.guest_mut(vm).set_io_queue_capacity(q, 8);
    let port = m.bind_io_port(vm, q, VcpuId(0));
    // One slow worker, a flood of requests.
    let t = m.guest_mut(vm).spawn(
        ThreadKind::User,
        Box::new(Script::new(
            (0..4)
                .flat_map(|_| {
                    vec![
                        ThreadAction::IoWait(q),
                        ThreadAction::Compute(SimDuration::from_ms(5)),
                    ]
                })
                .collect(),
        )),
    );
    m.start_thread(vm, t);
    m.inject_io(vm, port, SimTime::from_ms(1), 64);
    m.run_until(SimTime::from_ms(100));
    assert!(
        m.guest(vm).io_drops(q) >= 64 - 8 - 4,
        "drops: {}",
        m.guest(vm).io_drops(q)
    );
}

#[test]
fn full_apache_pipeline_under_all_configs() {
    // Smoke the whole request path in every configuration.
    for cfg in SystemConfig::ALL {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 4,
            seed: 5,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(cfg.domain_spec(4));
        let srv = apache::install(&mut m, vm, ApacheConfig::default());
        let window = SimDuration::from_ms(400);
        let sent = apache::run_client(&mut m, vm, &srv, 1_000.0, SimTime::from_ms(10), window);
        m.run_until(SimTime::from_ms(600));
        let s = apache::summarize(&m, vm, &srv, SimTime::from_ms(10), window);
        assert!(sent > 200);
        assert!(
            s.replies as f64 > 0.9 * sent as f64,
            "{}: {} of {} replied",
            cfg.label(),
            s.replies,
            sent
        );
    }
}
