//! Determinism regression: the DES's core guarantee is bit-identical
//! replay under the same seed. The property suite checks replay of
//! scalar outcomes; this test pins the full *event trace* — every traced
//! transition, in order, with its timestamp — plus the final per-domain
//! stats, against a second run. A divergence anywhere in the stack
//! (scheduler tie-breaking, RNG consumption order, queue ordering)
//! fails loudly here.

use vscale_repro::apps::desktop::{self, SlideshowConfig};
use vscale_repro::apps::npb::{self, NpbApp};
use vscale_repro::apps::spin::SpinPolicy;
use vscale_repro::core::config::{MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::sim::time::SimTime;

/// A contended host with seed-dependent workloads (desktop slideshows
/// draw think/burst times from the machine RNG) traced end to end.
fn traced_run(seed: u64) -> (String, String, u64) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed,
        ..MachineConfig::default()
    });
    m.enable_trace(1 << 16);
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(2).with_weight(256));
    let _bg = desktop::add_desktops(&mut m, 2, SlideshowConfig::default());
    let app = NpbApp {
        iterations: 8,
        ..npb::NPB_APPS[0]
    };
    let _run = npb::install(&mut m, vm, app, 2, SpinPolicy::Default);
    m.run_until_exited(vm, SimTime::from_secs(20));
    let trace = m.trace().dump();
    let stats = format!("{:?}", m.domain_stats(vm));
    (trace, stats, m.trace().total_pushed())
}

#[test]
fn same_seed_bit_identical_trace_and_stats() {
    let (trace_a, stats_a, pushed_a) = traced_run(42);
    let (trace_b, stats_b, pushed_b) = traced_run(42);
    assert!(pushed_a > 0, "scenario produced no trace events");
    assert_eq!(pushed_a, pushed_b, "trace lengths diverged");
    assert_eq!(stats_a, stats_b, "final domain stats diverged");
    // Compare line by line so a failure names the first divergent event
    // instead of dumping two multi-thousand-line traces.
    for (i, (la, lb)) in trace_a.lines().zip(trace_b.lines()).enumerate() {
        assert_eq!(la, lb, "trace diverges at line {i}");
    }
    assert_eq!(trace_a, trace_b);
}

/// FNV-1a over raw bytes — a hermetic, dependency-free digest. Only used
/// to pin golden traces; collision resistance is irrelevant because the
/// inputs are fixed-seed deterministic runs, not adversarial.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn golden_credit_traces_byte_identical_to_pre_refactor() {
    // Checksums captured from the Credit scheduler BEFORE the
    // `HypervisorSched` trait extraction. The refactor (and anything
    // after it) must keep the Credit backend byte-identical: every traced
    // scheduling transition and the final domain stats hash to exactly
    // these values. If a deliberate behavior change moves them, recapture
    // with `cargo test --test determinism golden -- --nocapture` and
    // update the table alongside a written justification in the diff.
    // Stats hashes re-blessed for the adversarial-tenant PR: DomainStats
    // gained three appended fields (stolen_est, kicks_throttled,
    // reconfigs_suppressed), which changes the Debug rendering the stats
    // hash pins. The *trace* hashes are unchanged — defenses default off,
    // so scheduling behavior is byte-identical to the pre-defense build.
    const GOLDEN: [(u64, u64, u64); 3] = [
        (7, 0x04ec_0c98_303d_2a36, 0xe376_1466_45b0_5a7d),
        (42, 0xd20f_633c_d384_17e3, 0x21e1_8f38_0c5f_4c42),
        (0xC0FFEE, 0xf4c1_76a0_768b_93d0, 0xb8a2_06e3_02fa_6b86),
    ];
    for (seed, want_trace, want_stats) in GOLDEN {
        let (trace, stats, pushed) = traced_run(seed);
        assert!(pushed > 0, "seed {seed}: scenario produced no trace events");
        let got_trace = fnv1a(trace.as_bytes());
        let got_stats = fnv1a(stats.as_bytes());
        eprintln!("golden seed {seed}: trace {got_trace:#x} stats {got_stats:#x}");
        assert_eq!(
            got_trace, want_trace,
            "seed {seed}: Credit trace drifted from pre-refactor golden \
             (got {got_trace:#x}, want {want_trace:#x})"
        );
        assert_eq!(
            got_stats, want_stats,
            "seed {seed}: Credit domain stats drifted from pre-refactor golden \
             (got {got_stats:#x}, want {want_stats:#x})"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    // Not a hard guarantee for every pair, but these seeds drive
    // RNG-sampled desktop workloads; identical traces would mean the
    // seed is being ignored somewhere.
    let (trace_a, _, _) = traced_run(1);
    let (trace_b, _, _) = traced_run(2);
    assert_ne!(trace_a, trace_b, "seed had no effect on the event trace");
}

/// A short contended run with `cfg` installed, traced end to end.
fn faulted_run(cfg: vscale_repro::sim::fault::FaultConfig) -> (String, String, String) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed: 77,
        ..MachineConfig::default()
    });
    m.enable_trace(1 << 15);
    m.set_fault_plan(cfg);
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(2).with_weight(256));
    let _bg = desktop::add_desktops(&mut m, 2, SlideshowConfig::default());
    let app = NpbApp {
        iterations: 4,
        ..npb::NPB_APPS[0]
    };
    let _run = npb::install(&mut m, vm, app, 2, SpinPolicy::Default);
    m.run_until(SimTime::from_ms(400));
    (
        m.trace().dump(),
        format!("{:?}", m.domain_stats(vm)),
        format!("{:?}", m.fault_stats().expect("plan installed")),
    )
}

/// A recovery-heavy run: doorbell drops driving the retransmit ladder,
/// torn/stale serves driving reliable-read retries, and daemon crashes
/// driving resyncs — all recovery timers live on the same timing wheel
/// as the workload, so the trace must be bit-identical however the
/// enclosing sweep is threaded.
fn recovery_run(seed: u64) -> (String, String, String) {
    use vscale_repro::guest::thread::{Script, ThreadAction, ThreadKind};
    use vscale_repro::sim::fault::FaultConfig;
    use vscale_repro::sim::time::SimDuration;
    use vscale_repro::VcpuId;
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed,
        ..MachineConfig::default()
    });
    m.enable_trace(1 << 15);
    m.set_fault_plan(FaultConfig {
        seed: seed ^ 0xFA01,
        notify_drop_ppm: 400_000,
        stale_read_ppm: 200_000,
        torn_read_ppm: 200_000,
        daemon_crash_ppm: 200_000,
        ..FaultConfig::default()
    });
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(2).with_weight(256));
    let _bg = desktop::add_desktops(&mut m, 2, SlideshowConfig::default());
    let app = NpbApp {
        iterations: 4,
        ..npb::NPB_APPS[0]
    };
    let _run = npb::install(&mut m, vm, app, 2, SpinPolicy::Default);
    let q = m.guest_mut(vm).new_io_queue();
    let port = m.bind_io_port(vm, q, VcpuId(0));
    let mut actions = Vec::new();
    for _ in 0..8 {
        actions.push(ThreadAction::IoWait(q));
        actions.push(ThreadAction::Compute(SimDuration::from_us(40)));
    }
    let t = m
        .guest_mut(vm)
        .spawn(ThreadKind::User, Box::new(Script::new(actions)));
    m.start_thread(vm, t);
    for i in 0..8 {
        m.inject_io(vm, port, SimTime::from_ms(5 + 30 * i), 1);
    }
    m.run_until(SimTime::from_ms(400));
    (
        m.trace().dump(),
        format!("{:?}", m.domain_stats(vm)),
        format!("{:?}", m.fault_stats().expect("plan installed")),
    )
}

#[test]
fn recovery_replays_bit_identically_across_thread_counts() {
    // The resilience harness sweeps seeds through run_seeds_parallel;
    // VSCALE_THREADS must never leak into results. Drive the same seeds
    // through an explicit 1-thread and 4-thread pool and require every
    // per-seed trace, domain-stat, and fault-stat string to match.
    let seeds: Vec<u64> = (0..4).map(|i| 0xD15_EA5E + i).collect();
    let run_all = |threads: usize| {
        let seeds = seeds.clone();
        testkit::parallel::run_indexed_parallel(seeds.len(), threads, move |i| {
            recovery_run(seeds[i])
        })
    };
    let serial = run_all(1);
    let pooled = run_all(4);
    assert_eq!(serial.len(), pooled.len());
    for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
        assert_eq!(
            a.1, b.1,
            "seed {i}: domain stats diverged across thread counts"
        );
        assert_eq!(
            a.2, b.2,
            "seed {i}: fault stats diverged across thread counts"
        );
        for (l, (la, lb)) in a.0.lines().zip(b.0.lines()).enumerate() {
            assert_eq!(la, lb, "seed {i}: trace diverges at line {l}");
        }
        assert_eq!(a.0, b.0, "seed {i}: trace diverged across thread counts");
    }
}

/// One attacked-and-defended run: a boost-farming antagonist against the
/// seeded-randomized tick offsets (the defense whose entire mechanism is
/// drawing "random" numbers). The jitter stream must come from the
/// machine's seeded RNG — never ambient entropy, never thread timing —
/// so the trace is a pure function of the seed.
fn jittered_attack_run(seed: u64) -> (String, String, u64) {
    use vscale_repro::apps::antagonist::{self, AntagonistMode, AntagonistSpec, AttackKind};
    use vscale_repro::core::config::DefenseConfig;
    use vscale_repro::hv::CreditConfig;
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed,
        credit: CreditConfig {
            sampled_burn: true,
            ..CreditConfig::default()
        },
        defense: DefenseConfig {
            tick_jitter: true,
            ..DefenseConfig::default()
        },
        ..MachineConfig::default()
    });
    m.enable_trace(1 << 15);
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(2).with_weight(256));
    let _att = antagonist::install_antagonist(
        &mut m,
        AntagonistSpec::new(AttackKind::BoostFarm, AntagonistMode::Adversarial),
    );
    let app = NpbApp {
        iterations: 4,
        ..npb::NPB_APPS[0]
    };
    let _run = npb::install(&mut m, vm, app, 2, SpinPolicy::Default);
    m.run_until(SimTime::from_ms(400));
    (
        m.trace().dump(),
        format!("{:?}", m.domain_stats(vm)),
        m.ticks_jittered(),
    )
}

#[test]
fn jitter_defense_replays_bit_identically_across_thread_counts() {
    // The tick-jitter defense is the adversarial-grid component most at
    // risk of nondeterminism (it exists to be unpredictable *to the
    // tenant* — it must still be a pure function of the seed). Same
    // discipline as the recovery replay above: per-seed runs through a
    // 1-thread and a 4-thread pool must match byte for byte.
    let seeds: Vec<u64> = (0..4).map(|i| 0xA77AC4 + i).collect();
    let run_all = |threads: usize| {
        let seeds = seeds.clone();
        testkit::parallel::run_indexed_parallel(seeds.len(), threads, move |i| {
            jittered_attack_run(seeds[i])
        })
    };
    let serial = run_all(1);
    let pooled = run_all(4);
    assert_eq!(serial.len(), pooled.len());
    for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
        assert!(a.2 >= 1, "seed {i}: the jitter defense never drew");
        assert_eq!(a.2, b.2, "seed {i}: jitter draws diverged");
        assert_eq!(
            a.1, b.1,
            "seed {i}: domain stats diverged across thread counts"
        );
        for (l, (la, lb)) in a.0.lines().zip(b.0.lines()).enumerate() {
            assert_eq!(la, lb, "seed {i}: trace diverges at line {l}");
        }
        assert_eq!(a.0, b.0, "seed {i}: trace diverged across thread counts");
    }
    // Different seeds draw different jitter: the offsets are seeded, not
    // a fixed schedule an attacker could learn once and reuse.
    assert!(
        serial.windows(2).any(|w| w[0].0 != w[1].0),
        "every seed produced an identical jittered trace"
    );
}

#[test]
fn fault_plans_replay_bit_identically_through_session_json() {
    // Property: any fault plan serialized into a bench-session JSON line
    // (the `fault_plan` field rides inside a larger envelope, exactly as
    // the chaos smoke bench emits it) parses back to the same config, and
    // the replay it drives is bit-identical to the original run.
    use vscale_repro::sim::fault::FaultConfig;
    testkit::run_prop(
        "fault_plan_json_replay",
        testkit::Config::with_cases(6),
        &testkit::arb_fault_config(),
        |cfg| {
            let line = format!(
                "{{\"suite\":\"chaos_smoke\",\"bench\":\"replay\",\"scale\":\"quick\",\
                 \"fault_plan\":{},\"mean_ns\":123.4}}",
                cfg.to_json()
            );
            let parsed =
                FaultConfig::from_json(&line).map_err(|e| format!("embedded parse failed: {e}"))?;
            testkit::prop_assert_eq!(parsed, *cfg);
            let first = faulted_run(*cfg);
            let again = faulted_run(parsed);
            testkit::prop_assert!(first.1 == again.1, "domain stats diverged");
            testkit::prop_assert!(first.2 == again.2, "fault stats diverged");
            testkit::prop_assert!(first.0 == again.0, "trace diverged under replay");
            Ok(())
        },
    );
}
