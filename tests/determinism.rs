//! Determinism regression: the DES's core guarantee is bit-identical
//! replay under the same seed. The property suite checks replay of
//! scalar outcomes; this test pins the full *event trace* — every traced
//! transition, in order, with its timestamp — plus the final per-domain
//! stats, against a second run. A divergence anywhere in the stack
//! (scheduler tie-breaking, RNG consumption order, queue ordering)
//! fails loudly here.

use vscale_repro::apps::desktop::{self, SlideshowConfig};
use vscale_repro::apps::npb::{self, NpbApp};
use vscale_repro::apps::spin::SpinPolicy;
use vscale_repro::core::config::{MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::sim::time::SimTime;

/// A contended host with seed-dependent workloads (desktop slideshows
/// draw think/burst times from the machine RNG) traced end to end.
fn traced_run(seed: u64) -> (String, String, u64) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed,
        ..MachineConfig::default()
    });
    m.enable_trace(1 << 16);
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(2).with_weight(256));
    let _bg = desktop::add_desktops(&mut m, 2, SlideshowConfig::default());
    let app = NpbApp {
        iterations: 8,
        ..npb::NPB_APPS[0]
    };
    let _run = npb::install(&mut m, vm, app, 2, SpinPolicy::Default);
    m.run_until_exited(vm, SimTime::from_secs(20));
    let trace = m.trace().dump();
    let stats = format!("{:?}", m.domain_stats(vm));
    (trace, stats, m.trace().total_pushed())
}

#[test]
fn same_seed_bit_identical_trace_and_stats() {
    let (trace_a, stats_a, pushed_a) = traced_run(42);
    let (trace_b, stats_b, pushed_b) = traced_run(42);
    assert!(pushed_a > 0, "scenario produced no trace events");
    assert_eq!(pushed_a, pushed_b, "trace lengths diverged");
    assert_eq!(stats_a, stats_b, "final domain stats diverged");
    // Compare line by line so a failure names the first divergent event
    // instead of dumping two multi-thousand-line traces.
    for (i, (la, lb)) in trace_a.lines().zip(trace_b.lines()).enumerate() {
        assert_eq!(la, lb, "trace diverges at line {i}");
    }
    assert_eq!(trace_a, trace_b);
}

#[test]
fn different_seeds_diverge() {
    // Not a hard guarantee for every pair, but these seeds drive
    // RNG-sampled desktop workloads; identical traces would mean the
    // seed is being ignored somewhere.
    let (trace_a, _, _) = traced_run(1);
    let (trace_b, _, _) = traced_run(2);
    assert_ne!(trace_a, trace_b, "seed had no effect on the event trace");
}

/// A short contended run with `cfg` installed, traced end to end.
fn faulted_run(cfg: vscale_repro::sim::fault::FaultConfig) -> (String, String, String) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed: 77,
        ..MachineConfig::default()
    });
    m.enable_trace(1 << 15);
    m.set_fault_plan(cfg);
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(2).with_weight(256));
    let _bg = desktop::add_desktops(&mut m, 2, SlideshowConfig::default());
    let app = NpbApp {
        iterations: 4,
        ..npb::NPB_APPS[0]
    };
    let _run = npb::install(&mut m, vm, app, 2, SpinPolicy::Default);
    m.run_until(SimTime::from_ms(400));
    (
        m.trace().dump(),
        format!("{:?}", m.domain_stats(vm)),
        format!("{:?}", m.fault_stats().expect("plan installed")),
    )
}

#[test]
fn fault_plans_replay_bit_identically_through_session_json() {
    // Property: any fault plan serialized into a bench-session JSON line
    // (the `fault_plan` field rides inside a larger envelope, exactly as
    // the chaos smoke bench emits it) parses back to the same config, and
    // the replay it drives is bit-identical to the original run.
    use vscale_repro::sim::fault::FaultConfig;
    testkit::run_prop(
        "fault_plan_json_replay",
        testkit::Config::with_cases(6),
        &testkit::arb_fault_config(),
        |cfg| {
            let line = format!(
                "{{\"suite\":\"chaos_smoke\",\"bench\":\"replay\",\"scale\":\"quick\",\
                 \"fault_plan\":{},\"mean_ns\":123.4}}",
                cfg.to_json()
            );
            let parsed = FaultConfig::from_json(&line)
                .map_err(|e| format!("embedded parse failed: {e}"))?;
            testkit::prop_assert_eq!(parsed, *cfg);
            let first = faulted_run(*cfg);
            let again = faulted_run(parsed);
            testkit::prop_assert!(first.1 == again.1, "domain stats diverged");
            testkit::prop_assert!(first.2 == again.2, "fault stats diverged");
            testkit::prop_assert!(first.0 == again.0, "trace diverged under replay");
            Ok(())
        },
    );
}
