//! Layout-equivalence goldens for the struct-of-arrays scheduler state.
//!
//! The three `HypervisorSched` backends keep their per-vCPU hot state in
//! dense parallel arrays (`sim_core::soa::VcpuMap`), split from cold
//! stats. That is meant to be a pure *layout* change: every observable —
//! the emitted `SchedEvent` stream, per-vCPU states, freeze bits, run/wait
//! totals, migrations — must be bit-identical to the pre-refactor
//! `Vec<struct>` layout.
//!
//! These checksums were captured by replaying seeded
//! `testkit::differential` op streams against the pre-refactor backends
//! and FNV-1a-folding the full observable trajectory (events + state after
//! every op). They pin the trajectory itself, not just the conserved
//! quantities the cross-backend differential tests compare, so any layout
//! refactor that perturbs scheduling behavior — a reordered fold, a
//! dropped field, an index mix-up — moves a checksum.
//!
//! To re-bless after an *intentional* behavior change, run with
//! `VSCALE_BLESS=1 cargo test -q layout -- --nocapture` and copy the
//! printed table.

use sim_core::ids::{DomId, GlobalVcpu, PcpuId, VcpuId};
use sim_core::time::{SimDuration, SimTime};
use testkit::differential::{scenario_gen, Op, Scenario};
use testkit::source::Source;
use xen_sched::credit::{CreditConfig, SchedEvent, VcpuState};
use xen_sched::credit2::Credit2Scheduler;
use xen_sched::dynfrac::DynFracScheduler;
use xen_sched::{CreditScheduler, HypervisorSched};

/// Must match `testkit::differential::OP_STEP`.
const OP_STEP: SimDuration = SimDuration::from_us(500);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

fn fold_gv(h: &mut Fnv, gv: GlobalVcpu) {
    h.u64(gv.dom.index() as u64);
    h.u64(gv.vcpu.index() as u64);
}

fn fold_event(h: &mut Fnv, e: &SchedEvent) {
    match *e {
        SchedEvent::Run { pcpu, vcpu } => {
            h.u64(1);
            h.u64(pcpu.index() as u64);
            fold_gv(h, vcpu);
        }
        SchedEvent::Desched { pcpu, vcpu } => {
            h.u64(2);
            h.u64(pcpu.index() as u64);
            fold_gv(h, vcpu);
        }
        SchedEvent::Idle { pcpu } => {
            h.u64(3);
            h.u64(pcpu.index() as u64);
        }
    }
}

fn fold_state<S: HypervisorSched>(h: &mut Fnv, s: &S, vcpus: &[GlobalVcpu]) {
    for &gv in vcpus {
        match s.vcpu_state(gv) {
            VcpuState::Running { pcpu, since } => {
                h.u64(1);
                h.u64(pcpu.index() as u64);
                h.u64(since.as_ns());
            }
            VcpuState::Runnable { pcpu, since } => {
                h.u64(2);
                h.u64(pcpu.index() as u64);
                h.u64(since.as_ns());
            }
            VcpuState::Blocked { since } => {
                h.u64(3);
                h.u64(since.as_ns());
            }
        }
        h.u64(u64::from(s.is_frozen(gv)));
        h.u64(s.vcpu_run_total(gv).as_ns());
        h.u64(s.vcpu_wait_total(gv).as_ns());
        h.u64(s.scheduled_count(gv));
    }
    for p in 0..s.n_pcpus() {
        match s.running_on(PcpuId(p)) {
            Some(gv) => fold_gv(h, gv),
            None => h.u64(u64::MAX),
        }
        h.u64(s.switches(PcpuId(p)));
        h.u64(s.pcpu_gen(PcpuId(p)));
    }
}

/// Replays `scenario` with the same op normalization as
/// `testkit::differential::replay` and folds the full observable
/// trajectory into one checksum.
fn trajectory_checksum<S: HypervisorSched>(scenario: &Scenario) -> u64 {
    let mut vcpus = Vec::new();
    for (d, &(_, nv)) in scenario.domains.iter().enumerate() {
        for v in 0..nv {
            vcpus.push(GlobalVcpu::new(DomId(d), VcpuId(v)));
        }
    }
    let mut s = S::new_pool(CreditConfig::default(), scenario.n_pcpus);
    for &(weight, nv) in &scenario.domains {
        s.create_domain(weight, nv, None, None);
    }
    let mut h = Fnv::new();
    let mut now = SimTime::ZERO;
    let mut events = Vec::new();
    for (i, &op) in scenario.ops.iter().enumerate() {
        now += OP_STEP;
        events.clear();
        let gv = |sel: u8| vcpus[sel as usize % vcpus.len()];
        let pc = |sel: u8| PcpuId(sel as usize % scenario.n_pcpus);
        match op {
            Op::Tick(p) => s.on_tick(pc(p), now, &mut events),
            Op::Acct => s.on_acct(now, &mut events),
            Op::Slice(p) => s.slice_expired(pc(p), now, &mut events),
            Op::ExtendTick => s.on_extend_tick(now),
            Op::Wake(v) => {
                if !s.is_frozen(gv(v)) {
                    s.vcpu_wake(gv(v), now, &mut events);
                }
            }
            Op::Block(v) => s.vcpu_block(gv(v), now, &mut events),
            Op::Yield(v) => s.vcpu_yield(gv(v), now, &mut events),
            Op::Kick(v) => {
                if !s.is_frozen(gv(v)) {
                    s.kick_vcpu(gv(v), now, &mut events);
                }
            }
            Op::Freeze(v) => {
                s.set_frozen(gv(v), true);
                s.vcpu_block(gv(v), now, &mut events);
            }
            Op::Unfreeze(v) => {
                s.set_frozen(gv(v), false);
                s.vcpu_wake(gv(v), now, &mut events);
            }
            // Attack-shaped ops: never emitted by `scenario_gen` (the
            // goldens predate them) but normalized identically to
            // `testkit::differential::replay` for completeness.
            Op::SelfWake(v) => {
                if !s.is_frozen(gv(v)) {
                    s.vcpu_block(gv(v), now, &mut events);
                    s.vcpu_wake(gv(v), now, &mut events);
                }
            }
            Op::TickDodge(v) => {
                if !s.is_frozen(gv(v)) {
                    let dodged = s.where_running(gv(v));
                    s.vcpu_block(gv(v), now, &mut events);
                    if let Some(p) = dodged {
                        s.on_tick(p, now, &mut events);
                    }
                    s.vcpu_wake(gv(v), now, &mut events);
                }
            }
            Op::StormKick(v) => {
                let dom = gv(v).dom;
                for &target in vcpus.iter().filter(|t| t.dom == dom) {
                    if !s.is_frozen(target) {
                        s.kick_vcpu(target, now, &mut events);
                    }
                }
            }
            Op::FreezeThrash(v) => {
                s.set_frozen(gv(v), true);
                s.vcpu_block(gv(v), now, &mut events);
                s.set_frozen(gv(v), false);
                s.vcpu_wake(gv(v), now, &mut events);
            }
        }
        h.u64(i as u64);
        for e in &events {
            fold_event(&mut h, e);
        }
        fold_state(&mut h, &s, &vcpus);
        for d in 0..scenario.domains.len() {
            h.u64(s.domain_run_total(DomId(d)).as_ns());
            h.u64(s.domain_wait_total(DomId(d)).as_ns());
        }
    }
    h.u64(s.total_run_ns());
    h.u64(s.migrations());
    h.u64(s.extend_version());
    h.0
}

/// Seeds → pre-captured `(credit, credit2, dynfrac)` trajectory
/// checksums against the pre-SoA layout.
#[rustfmt::skip]
const GOLDEN: [(u64, u64, u64, u64); 5] = [
    (11, 0xe500396e789a1883, 0xf344d47b83afe01c, 0xf344d47b83afe01c),
    (23, 0xc28b26fe3b422bdb, 0x8613582c27df700f, 0xb1dc4f09b267bd28),
    (37, 0x06661cca29dc3d0f, 0xa0d48b73ff52e6ae, 0x0536f40e47d7c601),
    (59, 0xd95c97056a712997, 0xd5e79b5727f736d4, 0x5bfa366896da46e8),
    (101, 0x522a48e78fd9ecd5, 0x1f6a8c100a15dc3a, 0x1f6a8c100a15dc3a),
];

#[test]
fn soa_layout_preserves_scheduler_trajectories() {
    let gen = scenario_gen(60);
    let bless = std::env::var("VSCALE_BLESS").is_ok();
    for &(seed, credit, credit2, dynfrac) in &GOLDEN {
        let scenario = gen.run(&mut Source::random(seed));
        let c = trajectory_checksum::<CreditScheduler>(&scenario);
        let c2 = trajectory_checksum::<Credit2Scheduler>(&scenario);
        let df = trajectory_checksum::<DynFracScheduler>(&scenario);
        if bless {
            println!("    ({seed}, {c:#018x}, {c2:#018x}, {df:#018x}),");
            continue;
        }
        assert_eq!(
            (c, c2, df),
            (credit, credit2, dynfrac),
            "trajectory diverged from the pre-SoA layout for seed {seed} \
             ({} ops, {} pcpus, {:?} domains)",
            scenario.ops.len(),
            scenario.n_pcpus,
            scenario.domains,
        );
    }
    assert!(!bless, "bless mode prints checksums instead of asserting");
}
