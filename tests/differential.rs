//! Differential validation of the scheduler backends (tier-1).
//!
//! Two layers of checking, both over seeded Gen-produced op streams
//! (ticks, wakes, sleeps, yields, kicks, freezes — see
//! `testkit::differential`):
//!
//! - **per-backend**: every backend individually satisfies the
//!   structural, freeze-safety, monotonicity, capacity, and
//!   work-conservation invariants after every op, over ≥ 256 scenarios;
//! - **pairwise**: any two backends replaying the same scenario agree on
//!   the machine-wide run-time integral (the law every work-conserving
//!   policy must share), over ≥ 256 scenarios per pair. A divergence is
//!   shrunk to a minimal op sequence before being reported.
//!
//! A third layer replays **attack-shaped** streams
//! (`adversarial_scenario_gen`: timed self-wakeups, tick dodges,
//! domain-wide kick storms, freeze thrash — the op-level mirrors of
//! `workloads::antagonist`): adversarial composition may shift who runs,
//! but every backend must keep structural sanity and work conservation,
//! and any two backends must still agree on the run-time integral.
//!
//! `scripts/verify.sh differential_smoke` runs exactly this file.

use testkit::differential::{
    adversarial_scenario_gen, minimize_pair, minimize_pair_adversarial, replay, scenario_gen,
};
use testkit::{run_prop, Config};
use vscale_repro::hv::{Credit2Scheduler, CreditScheduler, DynFracScheduler, HypervisorSched};

const CASES: u32 = 256;
const MAX_OPS: usize = 120;

fn backend_invariants<S: HypervisorSched>() {
    run_prop(
        &format!("{}_invariants", S::backend_name()),
        Config::with_cases(CASES),
        &scenario_gen(MAX_OPS),
        |sc| {
            replay::<S>(sc)?;
            Ok(())
        },
    );
}

#[test]
fn credit_invariants_over_256_streams() {
    backend_invariants::<CreditScheduler>();
}

#[test]
fn credit2_invariants_over_256_streams() {
    backend_invariants::<Credit2Scheduler>();
}

#[test]
fn dynfrac_invariants_over_256_streams() {
    backend_invariants::<DynFracScheduler>();
}

fn pair_agrees<A: HypervisorSched, B: HypervisorSched>() {
    let cfg = Config {
        cases: CASES,
        ..Config::default()
    };
    if let Some(cx) = minimize_pair::<A, B>(cfg, MAX_OPS) {
        panic!(
            "{} vs {} diverged at case {} ({}); minimal scenario after {} shrink candidates:\n{:#?}",
            A::backend_name(),
            B::backend_name(),
            cx.case,
            cx.error,
            cx.shrink_candidates,
            cx.value,
        );
    }
}

fn backend_invariants_adversarial<S: HypervisorSched>() {
    run_prop(
        &format!("{}_adversarial_invariants", S::backend_name()),
        Config::with_cases(CASES),
        &adversarial_scenario_gen(MAX_OPS),
        |sc| {
            replay::<S>(sc)?;
            Ok(())
        },
    );
}

#[test]
fn credit_invariants_over_adversarial_streams() {
    backend_invariants_adversarial::<CreditScheduler>();
}

#[test]
fn credit2_invariants_over_adversarial_streams() {
    backend_invariants_adversarial::<Credit2Scheduler>();
}

#[test]
fn dynfrac_invariants_over_adversarial_streams() {
    backend_invariants_adversarial::<DynFracScheduler>();
}

fn pair_agrees_adversarial<A: HypervisorSched, B: HypervisorSched>() {
    let cfg = Config {
        cases: CASES,
        ..Config::default()
    };
    if let Some(cx) = minimize_pair_adversarial::<A, B>(cfg, MAX_OPS) {
        panic!(
            "{} vs {} diverged on an adversarial stream at case {} ({}); minimal scenario:\n{:#?}",
            A::backend_name(),
            B::backend_name(),
            cx.case,
            cx.error,
            cx.value,
        );
    }
}

#[test]
fn credit_vs_credit2_conservation_under_attack_streams() {
    pair_agrees_adversarial::<CreditScheduler, Credit2Scheduler>();
}

#[test]
fn credit_vs_dynfrac_conservation_under_attack_streams() {
    pair_agrees_adversarial::<CreditScheduler, DynFracScheduler>();
}

#[test]
fn credit2_vs_dynfrac_conservation_under_attack_streams() {
    pair_agrees_adversarial::<Credit2Scheduler, DynFracScheduler>();
}

#[test]
fn credit_vs_credit2_conservation() {
    pair_agrees::<CreditScheduler, Credit2Scheduler>();
}

#[test]
fn credit_vs_dynfrac_conservation() {
    pair_agrees::<CreditScheduler, DynFracScheduler>();
}

#[test]
fn credit2_vs_dynfrac_conservation() {
    pair_agrees::<Credit2Scheduler, DynFracScheduler>();
}
