//! Chaos suite: deterministic fault injection across the vScale channel,
//! daemon, IPI/notification dispatch, and hotplug paths.
//!
//! The graceful-degradation contract under test:
//!
//! - every fault class terminates with a clean result or a typed
//!   [`SimError`] — never a hang, never a panic on the supervised paths;
//! - no uthread (I/O request) is lost: dropped doorbells recover within
//!   the documented `notify_recovery` staleness bound;
//! - the freeze mask keeps converging to true extendability despite
//!   stale/torn reads and daemon crash-restarts;
//! - a fixed fault plan replays bit-identically, and a disabled plan is
//!   byte-identical to running with no plan at all.

use vscale_repro::apps::npb::{self, NpbApp};
use vscale_repro::apps::spin::SpinPolicy;
use vscale_repro::core::config::{DomainSpec, MachineConfig, SystemConfig};
use vscale_repro::core::daemon::DaemonConfig;
use vscale_repro::core::machine::Machine;
use vscale_repro::guest::thread::{OneShot, Script, ThreadAction, ThreadKind};
use vscale_repro::guest::KernelVersion;
use vscale_repro::hv::{Credit2Scheduler, CreditScheduler, DynFracScheduler, HypervisorSched};
use vscale_repro::sim::fault::{FaultConfig, SimErrorKind, WatchdogConfig, PPM};
use vscale_repro::sim::time::{SimDuration, SimTime};
use vscale_repro::{DomId, VcpuId};

fn compute_ms(ms: u64) -> Box<OneShot> {
    Box::new(OneShot::new(SimDuration::from_ms(ms)))
}

/// A contended host: a 4-vCPU vScale VM and a 2-vCPU fixed competitor on
/// 2 pCPUs, both compute-bound.
fn contended_machine(seed: u64) -> (Machine, DomId, DomId) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(4));
    let bg = m.add_domain(DomainSpec::fixed(2));
    for _ in 0..4 {
        let t = m.guest_mut(vm).spawn(ThreadKind::User, compute_ms(400));
        m.start_thread(vm, t);
    }
    // The competitor holds its pCPU for roughly the first second of the
    // run, so convergence checks at ~600 ms observe a contended host.
    for _ in 0..2 {
        let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(500));
        m.start_thread(bg, t);
    }
    (m, vm, bg)
}

#[test]
fn dropped_notifications_lose_no_uthreads() {
    // Every doorbell is dropped; the pending bit must still get every
    // request delivered within the notify_recovery staleness bound.
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed: 7,
        ..MachineConfig::default()
    });
    m.set_fault_plan(FaultConfig {
        seed: 1,
        notify_drop_ppm: PPM as u32,
        ..FaultConfig::default()
    });
    let d = m.add_domain(DomainSpec::fixed(2));
    let q = m.guest_mut(d).new_io_queue();
    let port = m.bind_io_port(d, q, VcpuId(0));
    let n_requests = 8u64;
    let mut actions = Vec::new();
    for _ in 0..n_requests {
        actions.push(ThreadAction::IoWait(q));
        actions.push(ThreadAction::Compute(SimDuration::from_us(50)));
    }
    let worker = m
        .guest_mut(d)
        .spawn(ThreadKind::User, Box::new(Script::new(actions)));
    m.start_thread(d, worker);
    for i in 0..n_requests {
        m.inject_io(d, port, SimTime::from_ms(5 + 20 * i), 1);
    }
    let done = m
        .try_run_until_exited(d, SimTime::from_secs(5))
        .expect("no typed error")
        .expect("every request must eventually arrive");
    assert!(done < SimTime::from_secs(1), "took {done}");
    let stats = m.fault_stats().expect("plan installed");
    assert!(stats.notify_dropped >= 1, "no doorbell was ever dropped");
    // The seq/ack protocol re-rang every lost doorbell, and with a 100%
    // drop rate every ladder ran out of budget and handed recovery to the
    // periodic re-scan.
    let st = m.domain_stats(d);
    assert!(st.retransmits >= 1, "drops never re-rang the doorbell");
    assert!(
        st.retransmit_exhausted >= 1,
        "a total blackout must exhaust the retransmit ladder"
    );
    let (arr, del, _) = m.io_logs(d);
    assert_eq!(arr.len() as u64, n_requests);
    assert_eq!(del.len() as u64, n_requests, "a uthread was lost");
    // Staleness bound: recovery rings within notify_recovery (10 ms
    // default) of the arrival, plus scheduling slack.
    for (a, dl) in arr.iter().zip(del) {
        let lat = dl.since(*a);
        assert!(
            lat <= SimDuration::from_ms(25),
            "delivery exceeded the recovery bound: {lat}"
        );
    }
}

#[test]
fn delayed_and_duplicated_notifications_terminate() {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed: 8,
        ..MachineConfig::default()
    });
    m.set_fault_plan(FaultConfig {
        seed: 2,
        notify_delay_ppm: 500_000,
        notify_dup_ppm: 500_000,
        ..FaultConfig::default()
    });
    let d = m.add_domain(DomainSpec::fixed(2));
    let q = m.guest_mut(d).new_io_queue();
    let port = m.bind_io_port(d, q, VcpuId(1));
    let mut actions = Vec::new();
    for _ in 0..6 {
        actions.push(ThreadAction::IoWait(q));
        actions.push(ThreadAction::Compute(SimDuration::from_us(80)));
    }
    let worker = m
        .guest_mut(d)
        .spawn(ThreadKind::User, Box::new(Script::new(actions)));
    m.start_thread(d, worker);
    for i in 0..6 {
        m.inject_io(d, port, SimTime::from_ms(3 + 10 * i), 1);
    }
    m.try_run_until_exited(d, SimTime::from_secs(5))
        .expect("no typed error")
        .expect("delays and duplicates must not lose requests");
    let stats = m.fault_stats().expect("plan installed");
    assert!(
        stats.notify_delayed + stats.notify_duplicated >= 1,
        "plan injected nothing: {stats:?}"
    );
    // Idempotence: spurious rings (duplicates, late retransmits) are
    // detected by the pending bit and suppressed; delayed doorbells open
    // a sequence that an eventual delivery acknowledges.
    let st = m.domain_stats(d);
    assert!(
        st.dup_suppressed >= 1,
        "no spurious ring was ever suppressed: {st:?}"
    );
    let (arr, del, _) = m.io_logs(d);
    assert_eq!(arr.len(), del.len(), "a request evaporated");
}

#[test]
fn ipi_faults_degrade_to_slice_boundaries_not_hangs() {
    // Drop every reschedule IPI: preemption wakeups degrade to the next
    // natural scheduling point (pending bit at slice end) but the barrier
    // workload still completes. Four NPB threads on two vCPUs so barrier
    // releases wake threads onto vCPUs that are busy running siblings —
    // the running-target IPI path the fault plan intercepts.
    let run = |drop_all: bool| {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 2,
            seed: 9,
            ..MachineConfig::default()
        });
        if drop_all {
            m.set_fault_plan(FaultConfig {
                seed: 3,
                ipi_drop_ppm: PPM as u32,
                ..FaultConfig::default()
            });
        }
        let d = m.add_domain(DomainSpec::fixed(2));
        let app = NpbApp {
            iterations: 12,
            ..npb::NPB_APPS[0]
        };
        npb::install(&mut m, d, app, 4, SpinPolicy::Default);
        let done = m
            .try_run_until_exited(d, SimTime::from_secs(60))
            .expect("no typed error")
            .expect("dropped IPIs must not deadlock the guest");
        (done, m.fault_stats().map(|s| s.ipi_dropped).unwrap_or(0))
    };
    let (clean, _) = run(false);
    let (faulted, dropped) = run(true);
    assert!(dropped >= 1, "scenario produced no IPI opportunities");
    // Degradation is bounded: a lost wakeup doorbell costs at most a few
    // slices, not unbounded stalls.
    let bound = SimTime::ZERO + clean.since(SimTime::ZERO).mul_f64(1.5) + SimDuration::from_ms(500);
    assert!(
        faulted <= bound,
        "degradation unbounded: clean {clean}, faulted {faulted}"
    );
}

#[test]
fn steal_spikes_slow_but_never_wedge() {
    let (mut m, vm, _bg) = contended_machine(11);
    m.set_fault_plan(FaultConfig {
        seed: 4,
        steal_spike_ppm: PPM as u32,
        steal_spike_max: SimDuration::from_ms(2),
        ..FaultConfig::default()
    });
    m.try_run_until_exited(vm, SimTime::from_secs(20))
        .expect("no typed error")
        .expect("steal spikes must not prevent completion");
    let stats = m.fault_stats().expect("plan installed");
    assert!(stats.steal_spikes > 10, "spikes: {}", stats.steal_spikes);
}

#[test]
fn daemon_crash_restart_still_converges() {
    let (mut m, vm, bg) = contended_machine(12);
    m.set_fault_plan(FaultConfig {
        seed: 5,
        daemon_crash_ppm: 250_000,
        ..FaultConfig::default()
    });
    m.try_run_until(SimTime::from_ms(600)).expect("no error");
    let mid = m.domain_stats(vm);
    assert!(mid.daemon_crashes >= 1, "no crash ever injected");
    assert!(
        mid.daemon_reads >= 1,
        "a crashing daemon must still get reads through"
    );
    // Even losing its EMA repeatedly, the daemon shrinks under contention…
    assert!(
        m.guest(vm).active_vcpus() <= 2,
        "never shrank despite competitor, active {}",
        m.guest(vm).active_vcpus()
    );
    // …and grows back once the competitor exits — observed while the VM
    // still has work left (an idle VM legitimately stays shrunk).
    let mut grew = 0;
    for step in 7..80 {
        m.try_run_until(SimTime::from_ms(50 * step))
            .expect("no error");
        if m.guest(vm).all_exited() {
            break;
        }
        if m.guest(bg).all_exited() {
            grew = grew.max(m.guest(vm).active_vcpus());
        }
    }
    assert!(m.guest(bg).all_exited());
    assert!(grew >= 2, "never grew back while busy, peak active {grew}");
    let end = m.domain_stats(vm);
    assert!(end.daemon_crashes >= mid.daemon_crashes);
}

#[test]
fn stale_and_torn_reads_are_detected_or_smoothed() {
    let (mut m, vm, _bg) = contended_machine(13);
    m.set_fault_plan(FaultConfig {
        seed: 6,
        stale_read_ppm: 300_000,
        torn_read_ppm: 200_000,
        ..FaultConfig::default()
    });
    m.try_run_until(SimTime::from_ms(600)).expect("no error");
    let st = m.domain_stats(vm);
    let fs = *m.fault_stats().expect("plan installed");
    assert!(fs.stale_reads >= 1 && fs.torn_reads >= 1, "{fs:?}");
    // Every torn serve was caught by validation and handled: retried,
    // served from the last-good snapshot, or (on a maiden read with no
    // history to tear across or fall back on) discarded. The `+ 1` covers
    // that maiden serve, which tears nothing and validates fresh.
    assert!(
        st.read_retries + st.read_fallbacks + st.discarded_reads + 1 >= fs.torn_reads,
        "torn reads acted upon: retries {} + fallbacks {} + discarded {} < torn {}",
        st.read_retries,
        st.read_fallbacks,
        st.discarded_reads,
        fs.torn_reads
    );
    assert!(
        st.read_retries >= 1,
        "the reliable read never retried a detected bad serve"
    );
    // Convergence: despite the noisy channel the mask still tracks true
    // extendability (~1 pCPU of a 2-pCPU host under competition).
    assert!(
        m.guest(vm).active_vcpus() <= 2,
        "stale/torn reads broke convergence, active {}",
        m.guest(vm).active_vcpus()
    );
}

#[test]
fn aborted_hotplug_leaves_the_vcpu_online_and_consistent() {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed: 14,
        ..MachineConfig::default()
    });
    m.set_fault_plan(FaultConfig {
        seed: 7,
        hotplug_abort_ppm: PPM as u32, // every removal aborts
        ..FaultConfig::default()
    });
    let vm = m.add_domain(DomainSpec {
        scaling: vscale_repro::core::config::ScalingMode::Hotplug {
            daemon: DaemonConfig::default(),
            version: KernelVersion::V3_14_15,
        },
        ..DomainSpec::fixed(4)
    });
    let bg = m.add_domain(DomainSpec::fixed(2));
    for _ in 0..4 {
        let t = m.guest_mut(vm).spawn(ThreadKind::User, compute_ms(600));
        m.start_thread(vm, t);
    }
    for _ in 0..2 {
        let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(600));
        m.start_thread(bg, t);
    }
    m.try_run_until(SimTime::from_ms(800)).expect("no error");
    let st = m.domain_stats(vm);
    assert!(st.hotplug_aborts >= 1, "no removal ever aborted");
    // The daemon retried the vetoed removal under capped exponential
    // backoff rather than hammering stop_machine every period.
    assert!(
        st.hotplug_retries >= 1,
        "aborted removal was never rescheduled: {st:?}"
    );
    // The invariant an abort must preserve: the target stays online.
    assert_eq!(m.guest(vm).active_vcpus(), 4, "an aborted removal offlined");
    for v in 0..4 {
        assert!(m.guest(vm).is_online(VcpuId(v)), "vcpu{v} offline");
    }
    // The machine is still live: the workload finishes.
    m.try_run_until_exited(vm, SimTime::from_secs(20))
        .expect("no error")
        .expect("aborts must not wedge the guest");
}

#[test]
fn crash_resync_repairs_a_lost_freeze_hypercall() {
    // A daemon crash may orphan an in-flight freeze/unfreeze hypercall,
    // leaving the hypervisor's frozen view diverged from the guest's
    // mask. The restarted daemon's first completed read must walk the
    // vCPUs and repair the divergence.
    let (mut m, vm, _bg) = contended_machine(18);
    // Let the fault-free daemon shrink first so there is real freeze
    // state to diverge from.
    m.try_run_until(SimTime::from_ms(600)).expect("no error");
    assert!(m.guest(vm).active_vcpus() <= 2, "never shrank");
    // Model the lost hypercall, then start crashing the daemon.
    m.desync_frozen(vm, VcpuId(3));
    assert_ne!(
        m.hv_frozen(vm, VcpuId(3)),
        m.guest(vm).freeze_mask().is_frozen(VcpuId(3)),
        "hook failed to desynchronize"
    );
    m.set_fault_plan(FaultConfig {
        seed: 21,
        daemon_crash_ppm: 300_000,
        ..FaultConfig::default()
    });
    m.try_run_until(SimTime::from_ms(900)).expect("no error");
    let st = m.domain_stats(vm);
    assert!(st.daemon_crashes >= 1, "no crash ever injected");
    assert!(st.resyncs >= 1, "restarted daemon never resynchronized");
    assert!(
        st.resync_repairs >= 1,
        "resync never repaired the diverged vCPU: {st:?}"
    );
    // The recovered invariant: guest and hypervisor agree on every vCPU.
    for v in 0..4 {
        assert_eq!(
            m.hv_frozen(vm, VcpuId(v)),
            m.guest(vm).freeze_mask().is_frozen(VcpuId(v)),
            "vcpu{v} still diverged after resync"
        );
    }
}

#[test]
fn failsafe_unfreezes_everything_when_the_daemon_goes_dark() {
    // Every period crashes: the daemon never completes another read. The
    // balancer's heartbeat watchdog must trip and unfreeze every vCPU —
    // degrading to the unscaled SMP baseline instead of honoring a mask
    // nobody is maintaining.
    let (mut m, vm, _bg) = contended_machine(19);
    m.try_run_until(SimTime::from_ms(600)).expect("no error");
    assert!(
        m.guest(vm).active_vcpus() <= 2,
        "precondition: the daemon shrank under contention"
    );
    m.set_fault_plan(FaultConfig {
        seed: 22,
        daemon_crash_ppm: PPM as u32,
        ..FaultConfig::default()
    });
    // Default heartbeat: 12 periods x 10 ms = 120 ms of silence.
    m.try_run_until(SimTime::from_ms(850)).expect("no error");
    let st = m.domain_stats(vm);
    assert!(st.failsafe_trips >= 1, "watchdog never tripped: {st:?}");
    assert_eq!(
        m.guest(vm).active_vcpus(),
        4,
        "fail-safe must unfreeze every vCPU"
    );
    for v in 0..4 {
        assert!(
            !m.hv_frozen(vm, VcpuId(v)),
            "vcpu{v} still frozen hypervisor-side after the trip"
        );
    }
}

/// One "inject → recover → converge" round: a contended host with a
/// barrier workload and an I/O stream on the vScale VM, `cfg` installed
/// for the first 600 ms, then cleared. Returns (completion time, domain
/// stats, fault stats drawn during the window, freeze-state agreement).
/// Generic over the scheduler backend: the recovery contract is about
/// the channel/daemon/balancer layers, so it must hold whether the
/// hypervisor runs credit, credit2, or dynamic-fractional scheduling.
fn inject_recover_converge<S: HypervisorSched>(
    seed: u64,
    cfg: Option<FaultConfig>,
) -> (
    SimTime,
    vscale_repro::core::machine::DomainStats,
    Option<vscale_repro::sim::fault::FaultStats>,
    bool,
) {
    let mut m: Machine<S> = Machine::with_backend(MachineConfig {
        n_pcpus: 2,
        seed,
        ..MachineConfig::default()
    });
    if let Some(cfg) = cfg {
        m.set_fault_plan(cfg);
    }
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(4));
    let bg = m.add_domain(DomainSpec::fixed(2));
    let app = NpbApp {
        iterations: 10,
        ..npb::NPB_APPS[0]
    };
    npb::install(&mut m, vm, app, 4, SpinPolicy::Default);
    for _ in 0..2 {
        let t = m.guest_mut(bg).spawn(ThreadKind::User, compute_ms(500));
        m.start_thread(bg, t);
    }
    // An I/O stream so the notification fault classes have doorbell
    // edges to corrupt.
    let q = m.guest_mut(vm).new_io_queue();
    let port = m.bind_io_port(vm, q, VcpuId(0));
    let mut actions = Vec::new();
    for _ in 0..20 {
        actions.push(ThreadAction::IoWait(q));
        actions.push(ThreadAction::Compute(SimDuration::from_us(30)));
    }
    let io_thread = m
        .guest_mut(vm)
        .spawn(ThreadKind::User, Box::new(Script::new(actions)));
    m.start_thread(vm, io_thread);
    for i in 0..20 {
        m.inject_io(vm, port, SimTime::from_ms(5 + 25 * i), 1);
    }
    // Fault window, then a clean tail to converge in.
    m.try_run_until(SimTime::from_ms(600)).expect("no error");
    let fs = m.fault_stats().copied();
    m.clear_fault_plan();
    let done = m
        .try_run_until_exited(vm, SimTime::from_secs(60))
        .expect("no typed error")
        .expect("workload must finish after the fault window closes");
    let st = m.domain_stats(vm);
    let consistent = (0..4)
        .all(|v| m.hv_frozen(vm, VcpuId(v)) == m.guest(vm).freeze_mask().is_frozen(VcpuId(v)));
    (done, st, fs, consistent)
}

/// Per fault class: saturate the class for 600 ms, clear the plan, and
/// require (a) the class actually injected, (b) its recovery protocol
/// demonstrably ran, (c) the workload finishes within a bounded factor
/// of the fault-free run, and (d) guest/hypervisor freeze state agrees
/// at the end. The clean baseline is measured on the same backend, since
/// completion times legitimately differ between policies.
fn fault_classes_recover_on<S: HypervisorSched>() {
    let (clean_done, _, _, clean_consistent) = inject_recover_converge::<S>(23, None);
    assert!(clean_consistent, "fault-free run ended inconsistent");
    let bound =
        SimTime::ZERO + clean_done.since(SimTime::ZERO).mul_f64(2.0) + SimDuration::from_ms(500);
    type Check = (
        &'static str,
        FaultConfig,
        fn(
            &vscale_repro::core::machine::DomainStats,
            &vscale_repro::sim::fault::FaultStats,
        ) -> bool,
    );
    let classes: [Check; 6] = [
        (
            "notify_drop",
            FaultConfig {
                seed: 31,
                notify_drop_ppm: PPM as u32,
                ..FaultConfig::default()
            },
            |st, fs| fs.notify_dropped >= 1 && st.retransmits >= 1,
        ),
        (
            "notify_delay_dup",
            FaultConfig {
                seed: 32,
                notify_delay_ppm: 500_000,
                notify_dup_ppm: 500_000,
                ..FaultConfig::default()
            },
            |st, fs| fs.notify_delayed + fs.notify_duplicated >= 1 && st.dup_suppressed >= 1,
        ),
        (
            "ipi_faults",
            FaultConfig {
                seed: 33,
                ipi_drop_ppm: PPM as u32,
                ..FaultConfig::default()
            },
            |_st, fs| fs.ipi_dropped >= 1,
        ),
        (
            "stale_torn_reads",
            FaultConfig {
                seed: 34,
                stale_read_ppm: 400_000,
                torn_read_ppm: 300_000,
                ..FaultConfig::default()
            },
            |st, fs| fs.stale_reads + fs.torn_reads >= 1 && st.read_retries >= 1,
        ),
        (
            "daemon_crash",
            FaultConfig {
                seed: 35,
                daemon_crash_ppm: 400_000,
                ..FaultConfig::default()
            },
            |st, fs| fs.daemon_crashes >= 1 && st.resyncs >= 1,
        ),
        (
            "steal_spikes",
            FaultConfig {
                seed: 36,
                steal_spike_ppm: PPM as u32,
                steal_spike_max: SimDuration::from_ms(2),
                ..FaultConfig::default()
            },
            |_st, fs| fs.steal_spikes >= 1,
        ),
    ];
    for (name, cfg, recovered) in classes {
        let (done, st, fs, consistent) = inject_recover_converge::<S>(23, Some(cfg));
        let fs = fs.expect("plan installed");
        let backend = S::backend_name();
        assert!(
            recovered(&st, &fs),
            "[{backend}] {name}: recovery protocol never ran: {st:?} {fs:?}"
        );
        assert!(
            done <= bound,
            "[{backend}] {name}: degradation unbounded: clean {clean_done}, faulted {done}"
        );
        assert!(
            consistent,
            "[{backend}] {name}: freeze state diverged at the end"
        );
    }
}

#[test]
fn every_fault_class_recovers_and_converges() {
    fault_classes_recover_on::<CreditScheduler>();
}

#[test]
fn every_fault_class_recovers_and_converges_on_credit2() {
    fault_classes_recover_on::<Credit2Scheduler>();
}

#[test]
fn every_fault_class_recovers_and_converges_on_dynfrac() {
    fault_classes_recover_on::<DynFracScheduler>();
}

#[test]
fn watchdog_reports_a_stuck_simulation_with_layer_attribution() {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 1,
        seed: 15,
        ..MachineConfig::default()
    });
    m.set_watchdog(WatchdogConfig {
        stall_timeout: SimDuration::from_ms(100),
        ..WatchdogConfig::default()
    });
    let d = m.add_domain(DomainSpec::fixed(1));
    let q = m.guest_mut(d).new_io_queue();
    // A thread waiting on I/O that never arrives: virtual time keeps
    // ticking (hypervisor timers) but nothing ever progresses.
    let t = m.guest_mut(d).spawn(
        ThreadKind::User,
        Box::new(Script::new(vec![ThreadAction::IoWait(q)])),
    );
    m.start_thread(d, t);
    let err = m
        .try_run_until(SimTime::from_secs(10))
        .expect_err("must flag the stall instead of spinning to deadline");
    assert!(
        matches!(err.kind, SimErrorKind::NoProgress { stalled_for } if stalled_for >= SimDuration::from_ms(100)),
        "wrong kind: {:?}",
        err.kind
    );
    assert!(!err.layer.is_empty());
    let rendered = err.to_string();
    assert!(rendered.contains("no forward progress"), "{rendered}");
    assert!(rendered.contains("vcpu state"), "{rendered}");
    assert!(rendered.contains("online="), "{rendered}");
}

#[test]
fn fixed_fault_plan_replays_bit_identically() {
    let run = || {
        let (mut m, vm, _bg) = contended_machine(16);
        m.enable_trace(1 << 15);
        m.set_fault_plan(FaultConfig {
            seed: 0xFA_17,
            notify_drop_ppm: 50_000,
            ipi_drop_ppm: 50_000,
            ipi_dup_ppm: 50_000,
            steal_spike_ppm: 100_000,
            daemon_crash_ppm: 100_000,
            stale_read_ppm: 150_000,
            torn_read_ppm: 100_000,
            ..FaultConfig::default()
        });
        m.try_run_until(SimTime::from_secs(2)).expect("no error");
        (
            m.trace().dump(),
            format!("{:?}", m.domain_stats(vm)),
            format!("{:?}", m.fault_stats().expect("plan")),
            m.now(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.3, b.3, "end times diverged");
    assert_eq!(a.1, b.1, "domain stats diverged");
    assert_eq!(a.2, b.2, "fault stats diverged");
    for (i, (la, lb)) in a.0.lines().zip(b.0.lines()).enumerate() {
        assert_eq!(la, lb, "trace diverges at line {i}");
    }
    assert_eq!(a.0, b.0);
}

#[test]
fn disabled_plan_is_byte_identical_to_no_plan() {
    // Zero-cost-when-off: an installed all-zero plan must not perturb a
    // single event, timestamp, or RNG draw.
    let run = |plan: bool| {
        let (mut m, vm, _bg) = contended_machine(17);
        m.enable_trace(1 << 15);
        if plan {
            m.set_fault_plan(FaultConfig {
                seed: 999, // seed is irrelevant: a noop plan never draws
                ..FaultConfig::default()
            });
        }
        m.run_until(SimTime::from_secs(2));
        (
            m.trace().dump(),
            format!("{:?}", m.domain_stats(vm)),
            m.now(),
        )
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(without.2, with.2, "end times diverged");
    assert_eq!(without.1, with.1, "stats diverged");
    assert_eq!(without.0, with.0, "a disabled plan perturbed the trace");
}

// --- Adversarial tenants (scheduler attacks) as a chaos source ---------
//
// The antagonists of `workloads::antagonist` degrade a victim's service
// by gaming scheduler accounting; the contract checked here is the
// chaos-shaped one: an attacked run still terminates, the matching
// defense restores bounded completion time, freeze state stays
// consistent, and attacks compose with every fault class without
// panicking. The quantitative inflation/recovery gates live in the
// `attack_grid` bench and `scripts/verify.sh attack_grid`.

use vscale_repro::apps::antagonist::{self, AntagonistMode, AntagonistSpec, AttackKind};
use vscale_repro::core::config::DefenseConfig;
use vscale_repro::hv::CreditConfig;

/// A victim/antagonist host on the historical sampled-burn credit
/// accounting (the vulnerable configuration the attack grid measures):
/// a 2-vCPU vScale victim running NPB ep against one equal-weight
/// antagonist on 2 pCPUs.
fn adversarial_machine(
    kind: AttackKind,
    mode: AntagonistMode,
    defense: DefenseConfig,
    seed: u64,
) -> (Machine, DomId, DomId) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed,
        credit: CreditConfig {
            sampled_burn: true,
            ..CreditConfig::default()
        },
        defense,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(SystemConfig::VScale.domain_spec(2).with_weight(256));
    let att = antagonist::install_antagonist(&mut m, AntagonistSpec::new(kind, mode));
    let app = NpbApp {
        iterations: 6,
        ..npb::app("ep").expect("ep is in NPB_APPS")
    };
    npb::install(&mut m, vm, app, 2, SpinPolicy::Default);
    (m, vm, att)
}

#[test]
fn every_attack_class_defends_and_converges() {
    for kind in AttackKind::ALL {
        let finish = |mode, defense| {
            let (mut m, vm, _att) = adversarial_machine(kind, mode, defense, 41);
            let done = m
                .try_run_until_exited(vm, SimTime::from_secs(120))
                .expect("no typed error")
                .unwrap_or_else(|| panic!("{}: victim never finished", kind.label()));
            let consistent = (0..2).all(|v| {
                m.hv_frozen(vm, VcpuId(v)) == m.guest(vm).freeze_mask().is_frozen(VcpuId(v))
            });
            (done, consistent)
        };
        // The attacked run terminates (degraded service, never a wedge)…
        let (_, attacked_consistent) =
            finish(AntagonistMode::Adversarial, DefenseConfig::default());
        assert!(
            attacked_consistent,
            "{}: attacked run ended with diverged freeze state",
            kind.label()
        );
        // …and the matching defense converges back to a bounded factor of
        // the benign-twin baseline (the tight 1.25× exec gate is the
        // bench's; this is the chaos-level "recovers at all" bound).
        let (baseline, _) = finish(AntagonistMode::Benign, DefenseConfig::default());
        let (defended, defended_consistent) =
            finish(AntagonistMode::Adversarial, kind.matching_defense());
        assert!(
            defended_consistent,
            "{}: defended run ended with diverged freeze state",
            kind.label()
        );
        let bound =
            SimTime::ZERO + baseline.since(SimTime::ZERO).mul_f64(2.0) + SimDuration::from_ms(500);
        assert!(
            defended <= bound,
            "{}: defense failed to converge: baseline {baseline}, defended {defended}",
            kind.label()
        );
    }
}

#[test]
fn attacks_compose_with_fault_plans_without_panics() {
    // Every attack class crossed with a mixed fault plan: whatever the
    // combination does to service quality, it must end in a clean finish,
    // a slow-but-legal deadline miss, or a typed, diagnosable error.
    for kind in AttackKind::ALL {
        let (mut m, vm, _att) = adversarial_machine(
            kind,
            AntagonistMode::Adversarial,
            DefenseConfig::default(),
            43,
        );
        m.set_watchdog(WatchdogConfig {
            stall_timeout: SimDuration::from_ms(500),
            ..WatchdogConfig::default()
        });
        m.set_fault_plan(FaultConfig {
            seed: 44,
            ipi_drop_ppm: 200_000,
            steal_spike_ppm: 200_000,
            steal_spike_max: SimDuration::from_ms(2),
            daemon_crash_ppm: 200_000,
            stale_read_ppm: 200_000,
            torn_read_ppm: 100_000,
            ..FaultConfig::default()
        });
        match m.try_run_until_exited(vm, SimTime::from_secs(120)) {
            Ok(Some(_)) => assert!(m.guest(vm).all_exited(), "{}: phantom finish", kind.label()),
            Ok(None) => {} // Legal: slow under compounded adversity.
            Err(e) => assert!(
                !e.to_string().is_empty() && !e.layer.is_empty(),
                "{}: undiagnosable error",
                kind.label()
            ),
        }
        let fs = m.fault_stats().expect("plan installed");
        assert!(
            fs.ipi_dropped + fs.steal_spikes + fs.daemon_crashes + fs.stale_reads >= 1,
            "{}: the fault plan never injected anything: {fs:?}",
            kind.label()
        );
    }
}

#[test]
fn freeze_dwell_suppresses_reconfig_thrash() {
    // The tick-evade attack whipsaws the victim daemon (its theft swings
    // measured extendability every accounting window). With the
    // freeze-rate hysteresis armed, part of that thrash must be absorbed
    // by the gate — visibly, in the defense-activity counter — and the
    // surviving reconfiguration rate must drop.
    let reconfigs = |defense: DefenseConfig| {
        let (mut m, vm, _att) = adversarial_machine(
            AttackKind::TickEvade,
            AntagonistMode::Adversarial,
            defense,
            47,
        );
        m.try_run_until(SimTime::from_secs(3)).expect("no error");
        let st = m.domain_stats(vm);
        (st.reconfigs, st.reconfigs_suppressed)
    };
    let (thrash, zero) = reconfigs(DefenseConfig::default());
    assert_eq!(zero, 0, "dwell-off run counted suppressions");
    assert!(
        thrash >= 10,
        "attack no longer thrashes the daemon: {thrash}"
    );
    let (gated, suppressed) = reconfigs(DefenseConfig {
        freeze_dwell: 8,
        ..DefenseConfig::default()
    });
    assert!(
        suppressed >= 1,
        "hysteresis gate never absorbed a reconfiguration"
    );
    assert!(
        gated < thrash,
        "gate did not reduce the reconfiguration rate: {gated} vs {thrash}"
    );
}

#[test]
fn any_generated_fault_plan_terminates_cleanly() {
    // Property: whatever the plan, a short contended run either completes
    // or returns a typed error — never panics, never hangs (watchdog).
    testkit::run_prop(
        "chaos_terminates",
        testkit::Config::with_cases(15),
        &testkit::arb_fault_config(),
        |cfg| {
            let (mut m, vm, _bg) = contended_machine(0x5EED ^ cfg.seed);
            m.set_watchdog(WatchdogConfig {
                stall_timeout: SimDuration::from_ms(500),
                ..WatchdogConfig::default()
            });
            m.set_fault_plan(*cfg);
            match m.try_run_until_exited(vm, SimTime::from_secs(30)) {
                Ok(Some(_)) => {
                    testkit::prop_assert!(
                        m.guest(vm).all_exited(),
                        "completion time without completion"
                    );
                }
                Ok(None) => {
                    // Deadline or queue exhaustion: legal, just slow.
                }
                Err(e) => {
                    // A typed error is an acceptable degradation — but it
                    // must carry diagnostics.
                    testkit::prop_assert!(
                        !e.to_string().is_empty() && !e.layer.is_empty(),
                        "undiagnosable error"
                    );
                }
            }
            Ok(())
        },
    );
}
