//! Smoke tests: every workload model runs to completion on a dedicated
//! (uncontended) machine and exhibits its expected gross characteristics.

use vscale_repro::apps::npb::{self, NPB_APPS};
use vscale_repro::apps::parsec::{self, PARSEC_APPS};
use vscale_repro::apps::spin::SpinPolicy;
use vscale_repro::core::config::{DomainSpec, MachineConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::sim::time::SimTime;

fn dedicated_machine(seed: u64) -> (Machine, vscale_repro::DomId) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 4,
        seed,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(DomainSpec::fixed(4));
    (m, vm)
}

#[test]
fn every_npb_app_completes_uncontended() {
    for (i, app) in NPB_APPS.iter().enumerate() {
        let (mut m, vm) = dedicated_machine(100 + i as u64);
        let scaled = npb::NpbApp {
            iterations: (app.iterations / 20).max(4),
            ..*app
        };
        npb::install(&mut m, vm, scaled, 4, SpinPolicy::Default);
        let done = m.run_until_exited(vm, SimTime::from_secs(60));
        assert!(done.is_some(), "{} did not finish", app.name);
        // Uncontended, the run should be within 3x of the ideal serial
        // fraction (barrier imbalance + overheads).
        let ideal = npb::ideal_runtime(&scaled).as_secs_f64();
        let took = done.unwrap().as_secs_f64();
        assert!(
            took < 3.0 * ideal + 0.2,
            "{}: took {took:.2}s vs ideal {ideal:.2}s",
            app.name
        );
        // All four vCPUs participated.
        let st = m.domain_stats(vm);
        assert!(
            st.timer_ints.iter().all(|&t| t > 0),
            "{}: some vCPU never ran",
            app.name
        );
    }
}

#[test]
fn every_parsec_app_completes_uncontended() {
    for (i, app) in PARSEC_APPS.iter().enumerate() {
        let (mut m, vm) = dedicated_machine(200 + i as u64);
        let scaled = parsec::ParsecApp {
            rounds: (app.rounds / 20).max(4),
            ..*app
        };
        parsec::install(&mut m, vm, scaled, 4);
        let done = m.run_until_exited(vm, SimTime::from_secs(60));
        assert!(done.is_some(), "{} did not finish", app.name);
    }
}

#[test]
fn pipeline_apps_flow_items_in_order() {
    // dedup's stages hand items downstream through bounded buffers; the
    // final stage must consume exactly `rounds` items.
    let (mut m, vm) = dedicated_machine(300);
    let app = parsec::ParsecApp {
        rounds: 40,
        ..parsec::app("dedup").expect("dedup")
    };
    parsec::install(&mut m, vm, app, 4);
    m.run_until_exited(vm, SimTime::from_secs(60))
        .expect("pipeline drains");
    // Every stage thread exited => every item passed through every stage.
    assert_eq!(m.exited_threads(vm), 4);
}

#[test]
fn npb_scales_with_parallelism_uncontended() {
    // The same 4 ep worker threads should run ~2x faster in a 4-vCPU VM
    // than in a 2-vCPU VM on a dedicated host (NPB work is per thread).
    let run = |n_vcpus: usize| -> f64 {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 4,
            seed: 400,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(DomainSpec::fixed(n_vcpus));
        let app = npb::NpbApp {
            iterations: 4,
            ..npb::app("ep").expect("ep")
        };
        npb::install(&mut m, vm, app, 4, SpinPolicy::Default);
        m.run_until_exited(vm, SimTime::from_secs(60))
            .expect("ep finishes")
            .as_secs_f64()
    };
    let two = run(2);
    let four = run(4);
    let speedup = two / four;
    assert!(
        (1.6..2.4).contains(&speedup),
        "ep 2->4 vCPU speedup {speedup:.2}"
    );
}
