//! Property-based invariants over random full-stack scenarios: no
//! panics, CPU conservation, deterministic replay, fairness, and the
//! guest's internal sanity under arbitrary freeze/unfreeze sequences.

use testkit::{bool_any, prop_assert, prop_assert_eq, run_prop, tuple2, tuple5, vec_of};
use testkit::{u64_in, u8_in, usize_in, Config};

use vscale_repro::core::config::{DomainSpec, MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::guest::thread::{OneShot, Script, ThreadAction, ThreadKind};
use vscale_repro::sim::time::{SimDuration, SimTime};
use vscale_repro::VcpuId;

/// Builds a random small host and runs it to a deadline; returns
/// per-domain run totals and the end time.
fn run_scenario(
    seed: u64,
    n_pcpus: usize,
    domain_sizes: &[usize],
    work_ms: &[u64],
    vscale_mask: u8,
) -> (Vec<f64>, f64, u64) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus,
        seed,
        ..MachineConfig::default()
    });
    let mut doms = Vec::new();
    for (i, &n) in domain_sizes.iter().enumerate() {
        let cfg = if vscale_mask & (1 << i) != 0 {
            SystemConfig::VScale
        } else {
            SystemConfig::Baseline
        };
        let d = m.add_domain(cfg.domain_spec(n).with_weight(128 * n as u32));
        doms.push(d);
    }
    for (di, &d) in doms.iter().enumerate() {
        for (wi, &w) in work_ms.iter().enumerate() {
            let w = 1 + (w + di as u64 * 7 + wi as u64 * 13) % 120;
            let t = m.guest_mut(d).spawn(
                ThreadKind::User,
                Box::new(OneShot::new(SimDuration::from_ms(w))),
            );
            m.start_thread(d, t);
        }
    }
    m.run_until(SimTime::from_secs(3));
    let runs: Vec<f64> = doms
        .iter()
        .map(|&d| m.domain_stats(d).run_total.as_secs_f64())
        .collect();
    let reconfigs: u64 = doms.iter().map(|&d| m.domain_stats(d).reconfigs).sum();
    (runs, m.now().as_secs_f64(), reconfigs)
}

/// The generator shared by the two scenario properties:
/// (seed, n_pcpus, domain sizes, work durations, vScale mask).
#[allow(clippy::type_complexity)]
fn arb_scenario(
    pcpu_hi: usize,
    size_hi: usize,
    sizes_hi: usize,
    work_hi: u64,
    works_hi: usize,
    mask_hi: u8,
) -> testkit::Gen<(u64, usize, Vec<usize>, Vec<u64>, u8)> {
    tuple5(
        u64_in(0..1000),
        usize_in(1..pcpu_hi),
        vec_of(usize_in(1..size_hi), 1..sizes_hi),
        vec_of(u64_in(1..work_hi), 1..works_hi),
        u8_in(0..mask_hi),
    )
}

/// Total CPU handed out never exceeds machine capacity, and the
/// simulation neither panics nor runs away.
#[test]
fn cpu_is_conserved() {
    let gen = arb_scenario(5, 5, 4, 120, 5, 8);
    run_prop(
        "cpu_is_conserved",
        Config::with_cases(12),
        &gen,
        |(seed, n_pcpus, sizes, work, mask)| {
            let (runs, end, _) = run_scenario(*seed, *n_pcpus, sizes, work, *mask);
            let total: f64 = runs.iter().sum();
            let capacity = end * *n_pcpus as f64;
            prop_assert!(
                total <= capacity * 1.001 + 0.001,
                "handed out {total:.3}s on {capacity:.3}s of capacity"
            );
            Ok(())
        },
    );
}

/// Bit-identical replay under the same seed.
#[test]
fn replay_is_deterministic() {
    let gen = arb_scenario(4, 4, 3, 80, 4, 4);
    run_prop(
        "replay_is_deterministic",
        Config::with_cases(12),
        &gen,
        |(seed, n_pcpus, sizes, work, mask)| {
            let a = run_scenario(*seed, *n_pcpus, sizes, work, *mask);
            let b = run_scenario(*seed, *n_pcpus, sizes, work, *mask);
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

/// Arbitrary freeze/unfreeze sequences never wedge the guest: all
/// threads eventually finish once everything is unfrozen.
#[test]
fn freeze_sequences_never_lose_threads() {
    let gen = tuple2(
        u64_in(0..500),
        vec_of(tuple2(usize_in(1..4), bool_any()), 0..12),
    );
    run_prop(
        "freeze_sequences_never_lose_threads",
        Config::with_cases(16),
        &gen,
        |(seed, ops)| {
            let mut m = Machine::new(MachineConfig {
                n_pcpus: 4,
                seed: *seed,
                ..MachineConfig::default()
            });
            let vm = m.add_domain(DomainSpec::fixed(4));
            for _ in 0..6 {
                let t = m.guest_mut(vm).spawn(
                    ThreadKind::User,
                    Box::new(Script::new(vec![
                        ThreadAction::Compute(SimDuration::from_ms(30)),
                        ThreadAction::Yield,
                        ThreadAction::Compute(SimDuration::from_ms(30)),
                    ])),
                );
                m.start_thread(vm, t);
            }
            // Interleave freezes/unfreezes with execution.
            let mut at = SimTime::from_ms(2);
            for &(v, freeze) in ops {
                m.run_until(at);
                let now = m.now();
                let mut fx = Vec::new();
                if freeze {
                    m.guest_mut(vm).freeze_vcpu(VcpuId(v), now, &mut fx);
                } else {
                    m.guest_mut(vm).unfreeze_vcpu(VcpuId(v), now, &mut fx);
                }
                m.apply_guest_effects(vm, fx);
                at += SimDuration::from_ms(2);
            }
            // Unfreeze everything and let it drain.
            m.run_until(at);
            let now = m.now();
            for v in 1..4 {
                let mut fx = Vec::new();
                m.guest_mut(vm).unfreeze_vcpu(VcpuId(v), now, &mut fx);
                m.apply_guest_effects(vm, fx);
            }
            let done = m.run_until_exited(vm, SimTime::from_secs(30));
            prop_assert!(done.is_some(), "threads wedged after freeze sequence");
            Ok(())
        },
    );
}
