//! Property-based invariants over random full-stack scenarios: no
//! panics, CPU conservation, deterministic replay, fairness, and the
//! guest's internal sanity under arbitrary freeze/unfreeze sequences.

use proptest::prelude::*;

use vscale_repro::core::config::{DomainSpec, MachineConfig, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::guest::thread::{OneShot, Script, ThreadAction, ThreadKind};
use vscale_repro::sim::time::{SimDuration, SimTime};
use vscale_repro::VcpuId;

/// Builds a random small host and runs it to a deadline; returns
/// per-domain run totals and the end time.
fn run_scenario(
    seed: u64,
    n_pcpus: usize,
    domain_sizes: &[usize],
    work_ms: &[u64],
    vscale_mask: u8,
) -> (Vec<f64>, f64, u64) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus,
        seed,
        ..MachineConfig::default()
    });
    let mut doms = Vec::new();
    for (i, &n) in domain_sizes.iter().enumerate() {
        let cfg = if vscale_mask & (1 << i) != 0 {
            SystemConfig::VScale
        } else {
            SystemConfig::Baseline
        };
        let d = m.add_domain(cfg.domain_spec(n).with_weight(128 * n as u32));
        doms.push(d);
    }
    for (di, &d) in doms.iter().enumerate() {
        for (wi, &w) in work_ms.iter().enumerate() {
            let w = 1 + (w + di as u64 * 7 + wi as u64 * 13) % 120;
            let t = m.guest_mut(d).spawn(
                ThreadKind::User,
                Box::new(OneShot::new(SimDuration::from_ms(w))),
            );
            m.start_thread(d, t);
        }
    }
    m.run_until(SimTime::from_secs(3));
    let runs: Vec<f64> = doms
        .iter()
        .map(|&d| m.domain_stats(d).run_total.as_secs_f64())
        .collect();
    let reconfigs: u64 = doms.iter().map(|&d| m.domain_stats(d).reconfigs).sum();
    (runs, m.now().as_secs_f64(), reconfigs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Total CPU handed out never exceeds machine capacity, and the
    /// simulation neither panics nor runs away.
    #[test]
    fn cpu_is_conserved(
        seed in 0u64..1000,
        n_pcpus in 1usize..5,
        sizes in prop::collection::vec(1usize..5, 1..4),
        work in prop::collection::vec(1u64..120, 1..5),
        mask in 0u8..8,
    ) {
        let (runs, end, _) = run_scenario(seed, n_pcpus, &sizes, &work, mask);
        let total: f64 = runs.iter().sum();
        let capacity = end * n_pcpus as f64;
        prop_assert!(
            total <= capacity * 1.001 + 0.001,
            "handed out {total:.3}s on {capacity:.3}s of capacity"
        );
    }

    /// Bit-identical replay under the same seed.
    #[test]
    fn replay_is_deterministic(
        seed in 0u64..1000,
        n_pcpus in 1usize..4,
        sizes in prop::collection::vec(1usize..4, 1..3),
        work in prop::collection::vec(1u64..80, 1..4),
        mask in 0u8..4,
    ) {
        let a = run_scenario(seed, n_pcpus, &sizes, &work, mask);
        let b = run_scenario(seed, n_pcpus, &sizes, &work, mask);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary freeze/unfreeze sequences never wedge the guest: all
    /// threads eventually finish once everything is unfrozen.
    #[test]
    fn freeze_sequences_never_lose_threads(
        seed in 0u64..500,
        ops in prop::collection::vec((1usize..4, prop::bool::ANY), 0..12),
    ) {
        let mut m = Machine::new(MachineConfig {
            n_pcpus: 4,
            seed,
            ..MachineConfig::default()
        });
        let vm = m.add_domain(DomainSpec::fixed(4));
        for _ in 0..6 {
            let t = m.guest_mut(vm).spawn(
                ThreadKind::User,
                Box::new(Script::new(vec![
                    ThreadAction::Compute(SimDuration::from_ms(30)),
                    ThreadAction::Yield,
                    ThreadAction::Compute(SimDuration::from_ms(30)),
                ])),
            );
            m.start_thread(vm, t);
        }
        // Interleave freezes/unfreezes with execution.
        let mut at = SimTime::from_ms(2);
        for (v, freeze) in ops {
            m.run_until(at);
            let now = m.now();
            let mut fx = Vec::new();
            if freeze {
                m.guest_mut(vm).freeze_vcpu(VcpuId(v), now, &mut fx);
            } else {
                m.guest_mut(vm).unfreeze_vcpu(VcpuId(v), now, &mut fx);
            }
            m.apply_guest_effects(vm, fx);
            at = at + SimDuration::from_ms(2);
        }
        // Unfreeze everything and let it drain.
        m.run_until(at);
        let now = m.now();
        for v in 1..4 {
            let mut fx = Vec::new();
            m.guest_mut(vm).unfreeze_vcpu(VcpuId(v), now, &mut fx);
            m.apply_guest_effects(vm, fx);
        }
        let done = m.run_until_exited(vm, SimTime::from_secs(30));
        prop_assert!(done.is_some(), "threads wedged after freeze sequence");
    }
}
