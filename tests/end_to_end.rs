//! Full-stack integration tests: hypervisor + guest kernel + daemon +
//! workloads running through the machine, asserting the paper's headline
//! behaviours end to end.

use vscale_repro::apps::desktop::{self, SlideshowConfig};
use vscale_repro::apps::npb;
use vscale_repro::apps::spin::SpinPolicy;
use vscale_repro::core::config::{DomainSpec, MachineConfig, ScalingMode, SystemConfig};
use vscale_repro::core::machine::Machine;
use vscale_repro::guest::thread::{OneShot, ThreadKind};
use vscale_repro::guest::KernelVersion;
use vscale_repro::sim::time::{SimDuration, SimTime};
use vscale_repro::VcpuId;

/// The §5.2.1 host: test VM + overcommitting desktops.
fn paper_host(cfg: SystemConfig, vm_vcpus: usize, seed: u64) -> (Machine, vscale_repro::DomId) {
    let mut m = Machine::new(MachineConfig {
        n_pcpus: vm_vcpus,
        seed,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(cfg.domain_spec(vm_vcpus).with_weight(128 * vm_vcpus as u32));
    desktop::add_desktops(
        &mut m,
        desktop::desktops_for_overcommit(vm_vcpus, vm_vcpus),
        SlideshowConfig::default(),
    );
    (m, vm)
}

fn run_npb(cfg: SystemConfig, name: &str, policy: SpinPolicy, seed: u64) -> (f64, f64) {
    let (mut m, vm) = paper_host(cfg, 4, seed);
    let app = npb::NpbApp {
        iterations: npb::app(name).expect("app exists").iterations / 5,
        ..npb::app(name).expect("app exists")
    };
    npb::install(&mut m, vm, app, 4, policy);
    let start = m.now();
    let end = m
        .run_until_exited(vm, SimTime::from_secs(120))
        .expect("app finishes");
    let st = m.domain_stats(vm);
    (end.since(start).as_secs_f64(), st.wait_total.as_secs_f64())
}

#[test]
fn vscale_accelerates_spin_heavy_apps_under_overcommit() {
    // The paper's headline (Figure 6a): lu and ua, whose synchronization
    // busy-waits, improve substantially. Average over seeds to tame
    // background-phase variance.
    for name in ["lu", "ua"] {
        let seeds = [3u64, 7, 11];
        let base: f64 = seeds
            .iter()
            .map(|&s| run_npb(SystemConfig::Baseline, name, SpinPolicy::Active, s).0)
            .sum::<f64>()
            / seeds.len() as f64;
        let vs: f64 = seeds
            .iter()
            .map(|&s| run_npb(SystemConfig::VScale, name, SpinPolicy::Active, s).0)
            .sum::<f64>()
            / seeds.len() as f64;
        assert!(
            vs < 0.8 * base,
            "{name}: vScale {vs:.2}s should beat baseline {base:.2}s by >20%"
        );
    }
}

#[test]
fn vscale_slashes_vcpu_waiting_time() {
    // Figure 9: the VM's waiting time drops dramatically.
    let (_, base_wait) = run_npb(SystemConfig::Baseline, "lu", SpinPolicy::Active, 7);
    let (_, vs_wait) = run_npb(SystemConfig::VScale, "lu", SpinPolicy::Active, 7);
    assert!(
        vs_wait < 0.4 * base_wait,
        "waiting {vs_wait:.2}s vs baseline {base_wait:.2}s"
    );
}

#[test]
fn insensitive_apps_are_not_penalized_much() {
    // Figure 6: ep has almost no synchronization; vScale must not wreck it.
    let seeds = [3u64, 7, 11];
    let base: f64 = seeds
        .iter()
        .map(|&s| run_npb(SystemConfig::Baseline, "ep", SpinPolicy::Active, s).0)
        .sum::<f64>()
        / seeds.len() as f64;
    let vs: f64 = seeds
        .iter()
        .map(|&s| run_npb(SystemConfig::VScale, "ep", SpinPolicy::Active, s).0)
        .sum::<f64>()
        / seeds.len() as f64;
    assert!(
        vs < 1.25 * base,
        "ep under vScale {vs:.2}s vs baseline {base:.2}s"
    );
}

#[test]
fn lu_gains_are_policy_independent() {
    // lu's ad-hoc spin is outside OpenMP's control: its baseline time and
    // its vScale gain barely move across GOMP_SPINCOUNT settings.
    let a = run_npb(SystemConfig::Baseline, "lu", SpinPolicy::Active, 7).0;
    let p = run_npb(SystemConfig::Baseline, "lu", SpinPolicy::Passive, 7).0;
    let rel = (a - p).abs() / a;
    assert!(rel < 0.05, "lu baseline varies {rel:.2} across policies");
}

#[test]
fn daemon_tracks_background_fluctuation() {
    let (mut m, vm) = paper_host(SystemConfig::VScale, 4, 5);
    let app = npb::NpbApp {
        iterations: 600,
        ..npb::app("bt").expect("bt")
    };
    npb::install(&mut m, vm, app, 4, SpinPolicy::Active);
    m.run_until_exited(vm, SimTime::from_secs(120))
        .expect("bt finishes");
    let st = m.domain_stats(vm);
    assert!(st.daemon_reads > 50, "daemon polled {}", st.daemon_reads);
    assert!(st.reconfigs >= 4, "daemon reconfigured {}", st.reconfigs);
    // The trace touched both shrunken and full configurations.
    let counts: Vec<usize> = m.active_trace(vm).iter().map(|&(_, n)| n).collect();
    assert!(counts.iter().any(|&n| n <= 3), "never shrank: {counts:?}");
    assert!(counts.contains(&4), "never grew back");
}

#[test]
fn hotplug_mode_reconfigures_but_slower() {
    // The VCPU-Bal-style baseline: same monitoring, reconfiguration via
    // CPU hotplug with stop_machine stalls.
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed: 9,
        ..MachineConfig::default()
    });
    let vm = m.add_domain(DomainSpec {
        scaling: ScalingMode::Hotplug {
            daemon: vscale_repro::core::daemon::DaemonConfig::default(),
            version: KernelVersion::V3_14_15,
        },
        ..DomainSpec::fixed(4)
    });
    let bg = m.add_domain(DomainSpec::fixed(2));
    for _ in 0..4 {
        let t = m.guest_mut(vm).spawn(
            ThreadKind::User,
            Box::new(OneShot::new(SimDuration::from_ms(2_000))),
        );
        m.start_thread(vm, t);
    }
    for _ in 0..2 {
        let t = m.guest_mut(bg).spawn(
            ThreadKind::User,
            Box::new(OneShot::new(SimDuration::from_ms(1_500))),
        );
        m.start_thread(bg, t);
    }
    m.run_until(SimTime::from_ms(800));
    let st = m.domain_stats(vm);
    assert!(st.reconfigs >= 1, "hotplug mode never reconfigured");
    assert!(
        m.guest(vm).active_vcpus() < 4,
        "hotplug mode should have taken vCPUs offline"
    );
}

#[test]
fn four_configs_are_deterministic_and_distinct_seeds_vary() {
    let a = run_npb(SystemConfig::VScale, "cg", SpinPolicy::Active, 42);
    let b = run_npb(SystemConfig::VScale, "cg", SpinPolicy::Active, 42);
    assert_eq!(a, b, "same seed must replay identically");
    let c = run_npb(SystemConfig::VScale, "cg", SpinPolicy::Active, 43);
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn weights_preserved_when_vcpus_freeze() {
    // §4.2: per-VM weight — freezing vCPUs must not shrink the VM's
    // total allocation. Two identical CPU-hog VMs, one frozen to half
    // its vCPUs, must still split the machine evenly.
    let mut m = Machine::new(MachineConfig {
        n_pcpus: 2,
        seed: 1,
        ..MachineConfig::default()
    });
    let a = m.add_domain(DomainSpec::fixed(2).with_weight(256));
    let b = m.add_domain(DomainSpec::fixed(2).with_weight(256));
    for dom in [a, b] {
        for _ in 0..2 {
            let t = m.guest_mut(dom).spawn(
                ThreadKind::User,
                Box::new(OneShot::new(SimDuration::from_secs(10))),
            );
            m.start_thread(dom, t);
        }
    }
    // Freeze one of B's vCPUs.
    let now = m.now();
    let mut fx = Vec::new();
    m.guest_mut(b).freeze_vcpu(VcpuId(1), now, &mut fx);
    m.apply_guest_effects(b, fx);
    m.run_until(SimTime::from_secs(2));
    let ra = m.domain_stats(a).run_total.as_secs_f64();
    let rb = m.domain_stats(b).run_total.as_secs_f64();
    let ratio = ra / rb;
    assert!(
        (0.8..1.25).contains(&ratio),
        "equal weights must mean equal CPU: {ra:.2}s vs {rb:.2}s"
    );
}

#[test]
fn eight_vcpu_vm_shows_larger_gains() {
    // Figure 7: in the 8-vCPU VM the spin-heavy kernels improve even more
    // than at 4 vCPUs (more stacking surface for the baseline).
    let run8 = |cfg: SystemConfig, seed: u64| -> f64 {
        let (mut m, vm) = paper_host(cfg, 8, seed);
        let app = npb::NpbApp {
            iterations: npb::app("lu").expect("lu").iterations / 8,
            ..npb::app("lu").expect("lu")
        };
        npb::install(&mut m, vm, app, 8, SpinPolicy::Active);
        let start = m.now();
        m.run_until_exited(vm, SimTime::from_secs(240))
            .expect("lu finishes")
            .since(start)
            .as_secs_f64()
    };
    let seeds = [3u64, 7];
    let base: f64 = seeds
        .iter()
        .map(|&s| run8(SystemConfig::Baseline, s))
        .sum::<f64>()
        / 2.0;
    let vs: f64 = seeds
        .iter()
        .map(|&s| run8(SystemConfig::VScale, s))
        .sum::<f64>()
        / 2.0;
    assert!(
        vs < 0.6 * base,
        "8-vCPU lu: vScale {vs:.2}s vs baseline {base:.2}s"
    );
}

#[test]
fn adaptive_application_uses_effective_parallelism() {
    // §7 future work end-to-end: the parallelism-aware app outperforms the
    // fixed pool under vScale in the fluctuating host.
    use vscale_repro::apps::adaptive::{self, AdaptiveConfig};
    let run = |adaptive_flag: bool, seed: u64| -> f64 {
        let (mut m, vm) = paper_host(SystemConfig::VScale, 4, seed);
        adaptive::install(
            &mut m,
            vm,
            AdaptiveConfig {
                iterations: 300,
                adaptive: adaptive_flag,
                ..AdaptiveConfig::default()
            },
            4,
        );
        let start = m.now();
        m.run_until_exited(vm, SimTime::from_secs(240))
            .expect("app finishes")
            .since(start)
            .as_secs_f64()
    };
    let seeds = [3u64, 7, 11];
    let fixed: f64 = seeds.iter().map(|&s| run(false, s)).sum::<f64>() / 3.0;
    let aware: f64 = seeds.iter().map(|&s| run(true, s)).sum::<f64>() / 3.0;
    assert!(
        aware < fixed,
        "parallelism-aware app should win: {aware:.2}s vs {fixed:.2}s"
    );
}
