//! Snapshot determinism across the whole stack: restoring a mid-run
//! checkpoint and running forward must be **byte-identical** to never
//! having stopped — for every scheduler backend, and independent of the
//! cluster worker-thread count.
//!
//! This is the property the host-failure machinery leans on: a crashed
//! host restored from its checkpoint deterministically replays the lost
//! interval, so the cluster can fence the replayed work exactly (it
//! knows precisely what the replay will re-produce).

use vscale_repro::apps::apache::{self, ApacheConfig};
use vscale_repro::apps::desktop::{self, SlideshowConfig};
use vscale_repro::core::config::{MachineConfig, SystemConfig};
use vscale_repro::core::Machine;
use vscale_repro::hv::{Credit2Scheduler, CreditScheduler, DynFracScheduler, HypervisorSched};
use vscale_repro::sim::time::{SimDuration, SimTime};

/// Builds a loaded machine: one vScale Apache-serving VM plus a desktop
/// neighbour, with a request batch injected every 5 ms.
fn build<S: HypervisorSched>(seed: u64) -> Machine<S> {
    let mut m = Machine::<S>::with_backend(MachineConfig {
        n_pcpus: 2,
        seed,
        ..MachineConfig::default()
    });
    let mut spec = SystemConfig::VScale.domain_spec(4);
    spec.guest.costs.softirq_net = SimDuration::from_us(25);
    let dom = m.add_domain(spec);
    let srv = apache::install(&mut m, dom, ApacheConfig::default());
    desktop::add_desktop_vm(&mut m, SlideshowConfig::default());
    for i in 0..120u64 {
        m.inject_io(dom, srv.port, SimTime::from_ms(5 + 5 * i), 2);
    }
    m
}

/// Checkpoint mid-run, restore into a twin, run both to the horizon:
/// the final checkpoints (full machine state down to RNG words and
/// event-wheel contents) must be byte-equal.
fn restore_then_run_is_byte_identical<S: HypervisorSched>(backend: &str) {
    let horizon = SimTime::from_ms(700);
    let mut a = build::<S>(23);
    a.run_until(SimTime::from_ms(260));
    let mid = a.checkpoint();
    let t_mid = a.now();
    a.run_until(horizon);
    let final_a = a.checkpoint();

    let mut b = build::<S>(23);
    b.restore(&mid);
    assert_eq!(
        b.now(),
        t_mid,
        "[{backend}] restore lands at the checkpoint instant"
    );
    b.run_until(horizon);
    let final_b = b.checkpoint();
    assert_eq!(
        final_a, final_b,
        "[{backend}] restore-then-run diverged from the uninterrupted run"
    );
}

#[test]
fn credit_restore_then_run_is_byte_identical() {
    restore_then_run_is_byte_identical::<CreditScheduler>("credit");
}

#[test]
fn credit2_restore_then_run_is_byte_identical() {
    restore_then_run_is_byte_identical::<Credit2Scheduler>("credit2");
}

#[test]
fn dynfrac_restore_then_run_is_byte_identical() {
    restore_then_run_is_byte_identical::<DynFracScheduler>("dynfrac");
}

/// The same checkpoint must come out of a fleet no matter how many
/// worker threads stepped its hosts: host images are a pure function of
/// simulated time.
#[test]
fn fleet_checkpoints_are_thread_count_invariant() {
    use cluster::{build_web_fleet, ClusterConfig, WebFleetConfig};
    let images = |threads: usize| -> Vec<Vec<u8>> {
        let mut c = build_web_fleet(
            WebFleetConfig {
                hosts: 3,
                desktops_per_host: 1,
                ..WebFleetConfig::default()
            },
            ClusterConfig {
                threads,
                ..ClusterConfig::default()
            },
        );
        c.open_loop(2_500.0, SimTime::ZERO, SimTime::from_ms(150));
        c.run_until(SimTime::from_ms(150)).expect("runs");
        (0..c.n_hosts()).map(|h| c.checkpoint_host(h)).collect()
    };
    let serial = images(1);
    assert_eq!(serial, images(4), "host images depend on the thread count");
}
