//! Umbrella crate for the vScale reproduction workspace.
//!
//! This crate re-exports the public surface of every workspace member so
//! that examples and integration tests can use a single import root. The
//! actual implementation lives in the member crates:
//!
//! - [`sim`] — deterministic discrete-event simulation substrate.
//! - [`hv`] — the Xen-style credit scheduler hypervisor with the vScale
//!   extendability extension (Algorithm 1 of the paper).
//! - [`guest`] — the Linux-style guest kernel with the vScale balancer
//!   (Algorithm 2 of the paper).
//! - [`core`] — the cross-layer machine, daemon, and scenario builders.
//! - [`apps`] — workload models (NPB, PARSEC, Apache, kernel-build, ...).
//! - [`stats`] — experiment records and report rendering.

pub use guest_kernel as guest;
pub use metrics as stats;
pub use sim_core as sim;
pub use vscale as core;
pub use workloads as apps;
pub use xen_sched as hv;

pub use sim_core::ids::{DomId, GlobalVcpu, PcpuId, ThreadId, VcpuId};
